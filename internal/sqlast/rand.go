package sqlast

import (
	"math/rand"
	"strconv"
)

// RandConfig controls random AST generation. The zero value is usable;
// Normalize fills defaults.
type RandConfig struct {
	Tables   []string // candidate table names
	Columns  []string // candidate column names
	Funcs    []string // scalar function names
	MaxDepth int      // maximum subquery nesting depth
	MaxItems int      // maximum projection items
}

// Normalize fills zero fields with defaults.
func (c *RandConfig) Normalize() {
	if len(c.Tables) == 0 {
		c.Tables = []string{"t1", "t2", "t3", "orders", "parts"}
	}
	if len(c.Columns) == 0 {
		c.Columns = []string{"a", "b", "c", "id", "qty", "price", "name"}
	}
	if len(c.Funcs) == 0 {
		c.Funcs = []string{"abs", "round", "upper", "lower"}
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxItems <= 0 {
		c.MaxItems = 4
	}
}

// RandSelect generates a random, structurally valid SELECT statement. It is
// used by property-based tests (printer/parser round-trips) and stress tests.
func RandSelect(r *rand.Rand, cfg RandConfig) *SelectStmt {
	cfg.Normalize()
	g := &randGen{r: r, cfg: cfg}
	return g.selectStmt(cfg.MaxDepth)
}

type randGen struct {
	r   *rand.Rand
	cfg RandConfig
}

func (g *randGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

func (g *randGen) selectStmt(depth int) *SelectStmt {
	s := &SelectStmt{}
	if depth == g.cfg.MaxDepth && g.r.Intn(6) == 0 {
		s.With = []CTE{{Name: "cte" + strconv.Itoa(g.r.Intn(3)), Select: g.selectStmt(depth - 1)}}
	}
	s.Distinct = g.r.Intn(8) == 0
	n := 1 + g.r.Intn(g.cfg.MaxItems)
	grouped := g.r.Intn(4) == 0
	if grouped {
		col := g.pick(g.cfg.Columns)
		s.Items = []SelectItem{
			{Expr: Col("", col)},
			{Expr: &FuncCall{Name: "COUNT", Star: true}, Alias: "n"},
		}
		s.GroupBy = []Expr{Col("", col)}
		if g.r.Intn(2) == 0 {
			s.Having = &Binary{Op: ">", L: &FuncCall{Name: "COUNT", Star: true}, R: Number(strconv.Itoa(1 + g.r.Intn(9)))}
		}
	} else {
		for i := 0; i < n; i++ {
			item := SelectItem{Expr: g.expr(depth, false)}
			if g.r.Intn(5) == 0 {
				item.Alias = "x" + strconv.Itoa(i)
			}
			s.Items = append(s.Items, item)
		}
	}
	s.From = []TableRef{g.tableRef(depth)}
	if g.r.Intn(3) > 0 {
		s.Where = g.boolExpr(depth, 2)
	}
	if !grouped && g.r.Intn(5) == 0 {
		s.OrderBy = []OrderItem{{Expr: Col("", g.pick(g.cfg.Columns)), Desc: g.r.Intn(2) == 0}}
	}
	if g.r.Intn(7) == 0 {
		lim := 1 + g.r.Intn(100)
		s.Limit = &lim
	}
	return s
}

func (g *randGen) tableRef(depth int) TableRef {
	switch {
	case depth > 0 && g.r.Intn(6) == 0:
		return &SubqueryTable{Select: g.selectStmt(depth - 1), Alias: "sq" + strconv.Itoa(g.r.Intn(5))}
	case g.r.Intn(3) == 0:
		left := &TableName{Name: g.pick(g.cfg.Tables), Alias: "l"}
		right := &TableName{Name: g.pick(g.cfg.Tables), Alias: "r"}
		types := []string{"INNER", "LEFT", "RIGHT", "FULL"}
		return &Join{
			Left:  left,
			Right: right,
			Type:  types[g.r.Intn(len(types))],
			On:    Eq(Col("l", g.pick(g.cfg.Columns)), Col("r", g.pick(g.cfg.Columns))),
		}
	default:
		tn := &TableName{Name: g.pick(g.cfg.Tables)}
		if g.r.Intn(2) == 0 {
			tn.Alias = "t" + strconv.Itoa(g.r.Intn(5))
		}
		return tn
	}
}

// boolExpr builds a boolean expression with at most width conjuncts.
func (g *randGen) boolExpr(depth, width int) Expr {
	var conj []Expr
	n := 1 + g.r.Intn(width)
	for i := 0; i < n; i++ {
		conj = append(conj, g.predicate(depth))
	}
	if g.r.Intn(3) == 0 {
		return Or(conj...)
	}
	return And(conj...)
}

func (g *randGen) predicate(depth int) Expr {
	col := Col("", g.pick(g.cfg.Columns))
	switch g.r.Intn(8) {
	case 0:
		return &Between{X: col, Lo: Number(strconv.Itoa(g.r.Intn(10))), Hi: Number(strconv.Itoa(10 + g.r.Intn(90)))}
	case 1:
		return &IsNull{X: col, Not: g.r.Intn(2) == 0}
	case 2:
		return &In{X: col, List: []Expr{Number("1"), Number("2"), Number("3")}}
	case 3:
		if depth > 0 {
			return &In{X: col, Sub: g.scalarSubquery(depth - 1)}
		}
		return &Binary{Op: "LIKE", L: col, R: Str("%" + g.pick(g.cfg.Columns) + "%")}
	case 4:
		if depth > 0 {
			return &Exists{Sub: g.selectStmt(depth - 1)}
		}
		fallthrough
	default:
		ops := []string{"=", "<>", "<", ">", "<=", ">="}
		return &Binary{Op: ops[g.r.Intn(len(ops))], L: col, R: g.scalar()}
	}
}

// scalarSubquery builds a single-column SELECT for use inside IN.
func (g *randGen) scalarSubquery(depth int) *SelectStmt {
	s := &SelectStmt{
		Items: []SelectItem{{Expr: Col("", g.pick(g.cfg.Columns))}},
		From:  []TableRef{&TableName{Name: g.pick(g.cfg.Tables)}},
	}
	if g.r.Intn(2) == 0 && depth >= 0 {
		s.Where = g.predicate(0)
	}
	return s
}

func (g *randGen) scalar() Expr {
	switch g.r.Intn(5) {
	case 0:
		return Str(g.pick(g.cfg.Columns))
	case 1:
		return &FuncCall{Name: g.pick(g.cfg.Funcs), Args: []Expr{Col("", g.pick(g.cfg.Columns))}}
	default:
		if g.r.Intn(4) == 0 {
			return Number(strconv.FormatFloat(float64(g.r.Intn(1000))/10, 'f', 1, 64))
		}
		return Number(strconv.Itoa(g.r.Intn(1000)))
	}
}

func (g *randGen) expr(depth int, agg bool) Expr {
	switch g.r.Intn(6) {
	case 0:
		return g.scalar()
	case 1:
		return &Binary{Op: "+", L: Col("", g.pick(g.cfg.Columns)), R: g.scalar()}
	case 2:
		return &Case{
			Whens: []When{{Cond: &Binary{Op: ">", L: Col("", g.pick(g.cfg.Columns)), R: Number("0")}, Result: Number("1")}},
			Else:  Number("0"),
		}
	default:
		return Col("", g.pick(g.cfg.Columns))
	}
}
