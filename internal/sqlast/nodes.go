// Package sqlast defines the abstract syntax tree for the benchmark's SQL
// dialect, together with a canonical printer (deparser), a visitor, and deep
// cloning. The dialect covers ANSI SELECT with CTEs and set operations plus
// the T-SQL statements present in the SDSS and SQLShare logs.
package sqlast

// Node is implemented by every AST node.
type Node interface{ node() }

// Stmt is a SQL statement.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is a scalar or boolean expression.
type Expr interface {
	Node
	exprNode()
}

// TableRef is an entry in a FROM clause.
type TableRef interface {
	Node
	tableRefNode()
}

// ---------------------------------------------------------------------------
// Statements

// SelectStmt is a SELECT query, optionally prefixed by CTEs and suffixed by a
// set operation chain.
type SelectStmt struct {
	With     []CTE
	Distinct bool
	Top      *int // T-SQL TOP n
	Items    []SelectItem
	From     []TableRef // comma-separated refs; explicit joins nest via Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int
	Offset   *int
	SetOp    *SetOp // optional trailing UNION / INTERSECT / EXCEPT
}

// SetOp chains a second SELECT onto the first with a set operator.
type SetOp struct {
	Op    string // "UNION", "INTERSECT", "EXCEPT"
	All   bool
	Right *SelectStmt
}

// CTE is one common-table-expression binding in a WITH clause.
type CTE struct {
	Name    string
	Columns []string // optional explicit column list
	Select  *SelectStmt
}

// SelectItem is a single projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt is CREATE TABLE, either with column definitions or AS SELECT.
type CreateTableStmt struct {
	Name     string
	Cols     []ColumnDef
	AsSelect *SelectStmt
}

// ColumnDef is a column declaration inside CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string
}

// CreateViewStmt is CREATE VIEW ... AS SELECT.
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

// InsertStmt is INSERT INTO with VALUES rows or a SELECT source.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// UpdateStmt is UPDATE ... SET ... [WHERE].
type UpdateStmt struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

// Assignment is one column = value pair in UPDATE or SET.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM ... [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

// DeclareStmt is T-SQL DECLARE @var type [= expr].
type DeclareStmt struct {
	Name string // includes the leading @
	Type string
	Init Expr
}

// SetVarStmt is T-SQL SET @var = expr.
type SetVarStmt struct {
	Name  string
	Value Expr
}

// ExecStmt is T-SQL EXEC proc arg, arg, ...
type ExecStmt struct {
	Proc string
	Args []Expr
}

// DropStmt is DROP TABLE/VIEW name.
type DropStmt struct {
	Kind string // "TABLE" or "VIEW"
	Name string
}

// WaitforStmt is T-SQL WAITFOR DELAY 'hh:mm:ss'.
type WaitforStmt struct {
	Delay string
}

// TxnStmt is a transaction-control statement: BEGIN, COMMIT, or ROLLBACK.
// Kind holds the uppercase statement name.
type TxnStmt struct {
	Kind string // "BEGIN", "COMMIT", "ROLLBACK"
}

func (*SelectStmt) node()      {}
func (*CreateTableStmt) node() {}
func (*CreateViewStmt) node()  {}
func (*InsertStmt) node()      {}
func (*UpdateStmt) node()      {}
func (*DeleteStmt) node()      {}
func (*DeclareStmt) node()     {}
func (*SetVarStmt) node()      {}
func (*ExecStmt) node()        {}
func (*DropStmt) node()        {}
func (*WaitforStmt) node()     {}
func (*TxnStmt) node()         {}

func (*SelectStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*CreateViewStmt) stmtNode()  {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*DeclareStmt) stmtNode()     {}
func (*SetVarStmt) stmtNode()      {}
func (*ExecStmt) stmtNode()        {}
func (*DropStmt) stmtNode()        {}
func (*WaitforStmt) stmtNode()     {}
func (*TxnStmt) stmtNode()         {}

// ---------------------------------------------------------------------------
// Table references

// TableName references a base table or CTE, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

// Join is an explicit join between two table references.
type Join struct {
	Left  TableRef
	Right TableRef
	Type  string // "INNER", "LEFT", "RIGHT", "FULL", "CROSS"
	On    Expr   // nil for CROSS
}

func (*TableName) node()     {}
func (*SubqueryTable) node() {}
func (*Join) node()          {}

func (*TableName) tableRefNode()     {}
func (*SubqueryTable) tableRefNode() {}
func (*Join) tableRefNode()          {}

// ---------------------------------------------------------------------------
// Expressions

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // qualifier; "" when unqualified
	Name  string
}

// Star is the * or table.* projection item.
type Star struct {
	Table string // qualifier; "" for bare *
}

// LitKind classifies literals.
type LitKind int

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
	LitNull
	LitBool
)

// Literal is a literal constant. Text holds the source form: digits for
// numbers, unquoted contents for strings, "TRUE"/"FALSE" for booleans.
type Literal struct {
	Kind LitKind
	Text string
}

// VarRef is a T-SQL @variable reference.
type VarRef struct {
	Name string // includes the leading @
}

// Binary is a binary operation. Op is the uppercase operator text: OR, AND,
// =, <>, <, >, <=, >=, +, -, *, /, %, LIKE, ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT x or -x or +x.
type Unary struct {
	Op string // "NOT", "-", "+"
	X  Expr
}

// FuncCall is a function invocation, including aggregates. Star marks
// COUNT(*).
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

// Subquery is a scalar subquery expression.
type Subquery struct {
	Select *SelectStmt
}

// In is x [NOT] IN (list) or x [NOT] IN (SELECT ...).
type In struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Not bool
	Sub *SelectStmt
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// When is one WHEN cond THEN result arm of a CASE.
type When struct {
	Cond   Expr
	Result Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// Cast is CAST(x AS type).
type Cast struct {
	X    Expr
	Type string
}

func (*ColumnRef) node() {}
func (*Star) node()      {}
func (*Literal) node()   {}
func (*VarRef) node()    {}
func (*Binary) node()    {}
func (*Unary) node()     {}
func (*FuncCall) node()  {}
func (*Subquery) node()  {}
func (*In) node()        {}
func (*Exists) node()    {}
func (*Between) node()   {}
func (*IsNull) node()    {}
func (*Case) node()      {}
func (*Cast) node()      {}

func (*ColumnRef) exprNode() {}
func (*Star) exprNode()      {}
func (*Literal) exprNode()   {}
func (*VarRef) exprNode()    {}
func (*Binary) exprNode()    {}
func (*Unary) exprNode()     {}
func (*FuncCall) exprNode()  {}
func (*Subquery) exprNode()  {}
func (*In) exprNode()        {}
func (*Exists) exprNode()    {}
func (*Between) exprNode()   {}
func (*IsNull) exprNode()    {}
func (*Case) exprNode()      {}
func (*Cast) exprNode()      {}

// Number returns a numeric literal node.
func Number(text string) *Literal { return &Literal{Kind: LitNumber, Text: text} }

// Str returns a string literal node holding the unquoted contents.
func Str(text string) *Literal { return &Literal{Kind: LitString, Text: text} }

// Null returns the NULL literal.
func Null() *Literal { return &Literal{Kind: LitNull} }

// Col returns a possibly qualified column reference.
func Col(table, name string) *ColumnRef { return &ColumnRef{Table: table, Name: name} }

// Eq builds an equality comparison.
func Eq(l, r Expr) *Binary { return &Binary{Op: "=", L: l, R: r} }

// And folds the given expressions with AND; returns nil for no args.
func And(exprs ...Expr) Expr { return fold("AND", exprs) }

// Or folds the given expressions with OR; returns nil for no args.
func Or(exprs ...Expr) Expr { return fold("OR", exprs) }

func fold(op string, exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: op, L: out, R: e}
		}
	}
	return out
}

// AggregateFuncs is the set of aggregate function names (uppercase).
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"STDEV": true, "VAR": true,
}

// IsAggregate reports whether the function name (any case) is an aggregate.
func IsAggregate(name string) bool {
	return AggregateFuncs[upper(name)]
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
