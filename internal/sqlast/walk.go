package sqlast

// Visitor is called for every node during Walk. Returning false stops
// descent into the node's children (siblings are still visited).
type Visitor func(n Node) bool

// Walk traverses the tree rooted at n in depth-first order, invoking v for
// each node before its children. Nil nodes are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch t := n.(type) {
	case *SelectStmt:
		for i := range t.With {
			walkSelect(t.With[i].Select, v)
		}
		for _, item := range t.Items {
			Walk(item.Expr, v)
		}
		for _, tr := range t.From {
			Walk(tr, v)
		}
		Walk(t.Where, v)
		for _, e := range t.GroupBy {
			Walk(e, v)
		}
		Walk(t.Having, v)
		for _, o := range t.OrderBy {
			Walk(o.Expr, v)
		}
		if t.SetOp != nil {
			walkSelect(t.SetOp.Right, v)
		}
	case *CreateTableStmt:
		walkSelect(t.AsSelect, v)
	case *CreateViewStmt:
		walkSelect(t.Select, v)
	case *InsertStmt:
		for _, row := range t.Rows {
			for _, e := range row {
				Walk(e, v)
			}
		}
		walkSelect(t.Select, v)
	case *UpdateStmt:
		for _, a := range t.Set {
			Walk(a.Value, v)
		}
		Walk(t.Where, v)
	case *DeleteStmt:
		Walk(t.Where, v)
	case *DeclareStmt:
		Walk(t.Init, v)
	case *SetVarStmt:
		Walk(t.Value, v)
	case *ExecStmt:
		for _, a := range t.Args {
			Walk(a, v)
		}
	case *DropStmt, *WaitforStmt, *TxnStmt:
	case *TableName:
	case *SubqueryTable:
		walkSelect(t.Select, v)
	case *Join:
		Walk(t.Left, v)
		Walk(t.Right, v)
		Walk(t.On, v)
	case *ColumnRef, *Star, *Literal, *VarRef:
	case *Binary:
		Walk(t.L, v)
		Walk(t.R, v)
	case *Unary:
		Walk(t.X, v)
	case *FuncCall:
		for _, a := range t.Args {
			Walk(a, v)
		}
	case *Subquery:
		walkSelect(t.Select, v)
	case *In:
		Walk(t.X, v)
		for _, e := range t.List {
			Walk(e, v)
		}
		walkSelect(t.Sub, v)
	case *Exists:
		walkSelect(t.Sub, v)
	case *Between:
		Walk(t.X, v)
		Walk(t.Lo, v)
		Walk(t.Hi, v)
	case *IsNull:
		Walk(t.X, v)
	case *Case:
		Walk(t.Operand, v)
		for _, w := range t.Whens {
			Walk(w.Cond, v)
			Walk(w.Result, v)
		}
		Walk(t.Else, v)
	case *Cast:
		Walk(t.X, v)
	}
}

// walkSelect guards against typed-nil *SelectStmt inside interfaces.
func walkSelect(s *SelectStmt, v Visitor) {
	if s != nil {
		Walk(s, v)
	}
}

// Subqueries returns every nested SELECT inside the statement (not including
// the statement itself when it is a SELECT), in visit order.
func Subqueries(s Stmt) []*SelectStmt {
	var subs []*SelectStmt
	Walk(s, func(n Node) bool {
		switch t := n.(type) {
		case *Subquery:
			subs = append(subs, t.Select)
		case *SubqueryTable:
			subs = append(subs, t.Select)
		case *In:
			if t.Sub != nil {
				subs = append(subs, t.Sub)
			}
		case *Exists:
			subs = append(subs, t.Sub)
		case *SelectStmt:
			for i := range t.With {
				subs = append(subs, t.With[i].Select)
			}
			if t.SetOp != nil {
				subs = append(subs, t.SetOp.Right)
			}
		}
		return true
	})
	return subs
}
