package sqlast

import "fmt"

// CloneStmt returns a deep copy of the statement. Mutating the copy never
// affects the original; the equivalence transformations rely on this.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch t := s.(type) {
	case *SelectStmt:
		return CloneSelect(t)
	case *CreateTableStmt:
		c := &CreateTableStmt{Name: t.Name, AsSelect: CloneSelect(t.AsSelect)}
		c.Cols = append([]ColumnDef(nil), t.Cols...)
		return c
	case *CreateViewStmt:
		return &CreateViewStmt{Name: t.Name, Select: CloneSelect(t.Select)}
	case *InsertStmt:
		c := &InsertStmt{Table: t.Table, Select: CloneSelect(t.Select)}
		c.Columns = append([]string(nil), t.Columns...)
		for _, row := range t.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				nr[i] = CloneExpr(e)
			}
			c.Rows = append(c.Rows, nr)
		}
		return c
	case *UpdateStmt:
		c := &UpdateStmt{Table: t.Table, Alias: t.Alias, Where: CloneExpr(t.Where)}
		for _, a := range t.Set {
			c.Set = append(c.Set, Assignment{Column: a.Column, Value: CloneExpr(a.Value)})
		}
		return c
	case *DeleteStmt:
		return &DeleteStmt{Table: t.Table, Where: CloneExpr(t.Where)}
	case *DeclareStmt:
		return &DeclareStmt{Name: t.Name, Type: t.Type, Init: CloneExpr(t.Init)}
	case *SetVarStmt:
		return &SetVarStmt{Name: t.Name, Value: CloneExpr(t.Value)}
	case *ExecStmt:
		c := &ExecStmt{Proc: t.Proc}
		for _, a := range t.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *DropStmt:
		cp := *t
		return &cp
	case *WaitforStmt:
		cp := *t
		return &cp
	case *TxnStmt:
		cp := *t
		return &cp
	default:
		panic(fmt.Sprintf("sqlast: cannot clone statement %T", s))
	}
}

// CloneSelect deep-copies a SELECT statement; nil yields nil.
func CloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	c := &SelectStmt{Distinct: s.Distinct, Where: CloneExpr(s.Where), Having: CloneExpr(s.Having)}
	if s.Top != nil {
		v := *s.Top
		c.Top = &v
	}
	if s.Limit != nil {
		v := *s.Limit
		c.Limit = &v
	}
	if s.Offset != nil {
		v := *s.Offset
		c.Offset = &v
	}
	for _, cte := range s.With {
		c.With = append(c.With, CTE{
			Name:    cte.Name,
			Columns: append([]string(nil), cte.Columns...),
			Select:  CloneSelect(cte.Select),
		})
	}
	for _, item := range s.Items {
		c.Items = append(c.Items, SelectItem{Expr: CloneExpr(item.Expr), Alias: item.Alias})
	}
	for _, tr := range s.From {
		c.From = append(c.From, CloneTableRef(tr))
	}
	for _, e := range s.GroupBy {
		c.GroupBy = append(c.GroupBy, CloneExpr(e))
	}
	for _, o := range s.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	if s.SetOp != nil {
		c.SetOp = &SetOp{Op: s.SetOp.Op, All: s.SetOp.All, Right: CloneSelect(s.SetOp.Right)}
	}
	return c
}

// CloneTableRef deep-copies a table reference.
func CloneTableRef(tr TableRef) TableRef {
	switch t := tr.(type) {
	case *TableName:
		cp := *t
		return &cp
	case *SubqueryTable:
		return &SubqueryTable{Select: CloneSelect(t.Select), Alias: t.Alias}
	case *Join:
		return &Join{
			Left:  CloneTableRef(t.Left),
			Right: CloneTableRef(t.Right),
			Type:  t.Type,
			On:    CloneExpr(t.On),
		}
	default:
		panic(fmt.Sprintf("sqlast: cannot clone table ref %T", tr))
	}
}

// CloneExpr deep-copies an expression; nil yields nil.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *ColumnRef:
		cp := *t
		return &cp
	case *Star:
		cp := *t
		return &cp
	case *Literal:
		cp := *t
		return &cp
	case *VarRef:
		cp := *t
		return &cp
	case *Binary:
		return &Binary{Op: t.Op, L: CloneExpr(t.L), R: CloneExpr(t.R)}
	case *Unary:
		return &Unary{Op: t.Op, X: CloneExpr(t.X)}
	case *FuncCall:
		c := &FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Subquery:
		return &Subquery{Select: CloneSelect(t.Select)}
	case *In:
		c := &In{X: CloneExpr(t.X), Not: t.Not, Sub: CloneSelect(t.Sub)}
		for _, a := range t.List {
			c.List = append(c.List, CloneExpr(a))
		}
		return c
	case *Exists:
		return &Exists{Not: t.Not, Sub: CloneSelect(t.Sub)}
	case *Between:
		return &Between{X: CloneExpr(t.X), Not: t.Not, Lo: CloneExpr(t.Lo), Hi: CloneExpr(t.Hi)}
	case *IsNull:
		return &IsNull{X: CloneExpr(t.X), Not: t.Not}
	case *Case:
		c := &Case{Operand: CloneExpr(t.Operand), Else: CloneExpr(t.Else)}
		for _, w := range t.Whens {
			c.Whens = append(c.Whens, When{Cond: CloneExpr(w.Cond), Result: CloneExpr(w.Result)})
		}
		return c
	case *Cast:
		return &Cast{X: CloneExpr(t.X), Type: t.Type}
	default:
		panic(fmt.Sprintf("sqlast: cannot clone expression %T", e))
	}
}
