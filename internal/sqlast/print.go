package sqlast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a statement as canonical single-spaced SQL. The output is
// stable: Print(Parse(Print(s))) == Print(s). Word positions in the printed
// text correspond to token order, which the missing-token machinery relies on.
func Print(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s)
	return b.String()
}

// PrintExpr renders an expression as canonical SQL.
func PrintExpr(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, 0)
	return b.String()
}

// PrintTableRef renders a table reference as canonical SQL.
func PrintTableRef(tr TableRef) string {
	var b strings.Builder
	printTableRef(&b, tr)
	return b.String()
}

func printStmt(b *strings.Builder, s Stmt) {
	switch t := s.(type) {
	case *SelectStmt:
		printSelect(b, t)
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		b.WriteString(t.Name)
		if t.AsSelect != nil {
			b.WriteString(" AS ")
			printSelect(b, t.AsSelect)
			return
		}
		b.WriteString(" ( ")
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteString(" , ")
			}
			b.WriteString(c.Name)
			b.WriteString(" ")
			b.WriteString(c.Type)
		}
		b.WriteString(" )")
	case *CreateViewStmt:
		b.WriteString("CREATE VIEW ")
		b.WriteString(t.Name)
		b.WriteString(" AS ")
		printSelect(b, t.Select)
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		b.WriteString(t.Table)
		if len(t.Columns) > 0 {
			b.WriteString(" ( ")
			b.WriteString(strings.Join(t.Columns, " , "))
			b.WriteString(" )")
		}
		if t.Select != nil {
			b.WriteString(" ")
			printSelect(b, t.Select)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range t.Rows {
			if i > 0 {
				b.WriteString(" , ")
			}
			b.WriteString("( ")
			for j, e := range row {
				if j > 0 {
					b.WriteString(" , ")
				}
				printExpr(b, e, 0)
			}
			b.WriteString(" )")
		}
	case *UpdateStmt:
		b.WriteString("UPDATE ")
		b.WriteString(t.Table)
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
		b.WriteString(" SET ")
		for i, a := range t.Set {
			if i > 0 {
				b.WriteString(" , ")
			}
			b.WriteString(a.Column)
			b.WriteString(" = ")
			printExpr(b, a.Value, 0)
		}
		if t.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, t.Where, 0)
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM ")
		b.WriteString(t.Table)
		if t.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, t.Where, 0)
		}
	case *DeclareStmt:
		b.WriteString("DECLARE ")
		b.WriteString(t.Name)
		b.WriteString(" ")
		b.WriteString(t.Type)
		if t.Init != nil {
			b.WriteString(" = ")
			printExpr(b, t.Init, 0)
		}
	case *SetVarStmt:
		b.WriteString("SET ")
		b.WriteString(t.Name)
		b.WriteString(" = ")
		printExpr(b, t.Value, 0)
	case *ExecStmt:
		b.WriteString("EXEC ")
		b.WriteString(t.Proc)
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(" ,")
			}
			b.WriteString(" ")
			printExpr(b, a, 0)
		}
	case *DropStmt:
		b.WriteString("DROP ")
		b.WriteString(t.Kind)
		b.WriteString(" ")
		b.WriteString(t.Name)
	case *WaitforStmt:
		b.WriteString("WAITFOR DELAY '")
		b.WriteString(t.Delay)
		b.WriteString("'")
	case *TxnStmt:
		b.WriteString(t.Kind)
	default:
		panic(fmt.Sprintf("sqlast: unknown statement %T", s))
	}
}

func printSelect(b *strings.Builder, s *SelectStmt) {
	if len(s.With) > 0 {
		b.WriteString("WITH ")
		for i, cte := range s.With {
			if i > 0 {
				b.WriteString(" , ")
			}
			b.WriteString(cte.Name)
			if len(cte.Columns) > 0 {
				b.WriteString(" ( ")
				b.WriteString(strings.Join(cte.Columns, " , "))
				b.WriteString(" )")
			}
			b.WriteString(" AS ( ")
			printSelectCore(b, cte.Select)
			b.WriteString(" )")
		}
		b.WriteString(" ")
	}
	printSelectCore(b, s)
}

// printSelectCore prints the SELECT body without its WITH clause.
func printSelectCore(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Top != nil {
		b.WriteString("TOP ")
		b.WriteString(strconv.Itoa(*s.Top))
		b.WriteString(" ")
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(" , ")
		}
		printExpr(b, item.Expr, 0)
		if item.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(item.Alias)
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				b.WriteString(" , ")
			}
			printTableRef(b, tr)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printExpr(b, s.Where, 0)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(" , ")
			}
			printExpr(b, e, 0)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printExpr(b, s.Having, 0)
	}
	if s.SetOp != nil {
		b.WriteString(" ")
		b.WriteString(s.SetOp.Op)
		if s.SetOp.All {
			b.WriteString(" ALL")
		}
		b.WriteString(" ")
		printSelectCore(b, s.SetOp.Right)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(" , ")
			}
			printExpr(b, o.Expr, 0)
			if o.Desc {
				b.WriteString(" DESC")
			} else {
				b.WriteString(" ASC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(*s.Limit))
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(*s.Offset))
	}
}

func printTableRef(b *strings.Builder, tr TableRef) {
	switch t := tr.(type) {
	case *TableName:
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	case *SubqueryTable:
		b.WriteString("( ")
		printSelect(b, t.Select)
		b.WriteString(" )")
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	case *Join:
		printTableRef(b, t.Left)
		b.WriteString(" ")
		switch t.Type {
		case "", "INNER":
			b.WriteString("JOIN")
		case "CROSS":
			b.WriteString("CROSS JOIN")
		default:
			b.WriteString(t.Type)
			b.WriteString(" JOIN")
		}
		b.WriteString(" ")
		// A join as the right operand needs parentheses to survive the
		// left-associative grammar.
		if _, nested := t.Right.(*Join); nested {
			b.WriteString("( ")
			printTableRef(b, t.Right)
			b.WriteString(" )")
		} else {
			printTableRef(b, t.Right)
		}
		if t.On != nil {
			b.WriteString(" ON ")
			printExpr(b, t.On, 0)
		}
	default:
		panic(fmt.Sprintf("sqlast: unknown table ref %T", tr))
	}
}

// Operator precedence for parenthesization; higher binds tighter.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
)

func opPrec(op string) int {
	switch op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "=", "<>", "!=", "<", ">", "<=", ">=", "LIKE":
		return precCmp
	case "+", "-", "||":
		return precAdd
	case "*", "/", "%":
		return precMul
	default:
		return precCmp
	}
}

func printExpr(b *strings.Builder, e Expr, parentPrec int) {
	switch t := e.(type) {
	case *ColumnRef:
		if t.Table != "" {
			b.WriteString(t.Table)
			b.WriteString(".")
		}
		b.WriteString(t.Name)
	case *Star:
		if t.Table != "" {
			b.WriteString(t.Table)
			b.WriteString(".")
		}
		b.WriteString("*")
	case *Literal:
		switch t.Kind {
		case LitNumber:
			b.WriteString(t.Text)
		case LitString:
			b.WriteString("'")
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteString("'")
		case LitNull:
			b.WriteString("NULL")
		case LitBool:
			b.WriteString(strings.ToUpper(t.Text))
		}
	case *VarRef:
		b.WriteString(t.Name)
	case *Binary:
		prec := opPrec(t.Op)
		open := prec < parentPrec
		if open {
			b.WriteString("( ")
		}
		printExpr(b, t.L, prec)
		b.WriteString(" ")
		b.WriteString(t.Op)
		b.WriteString(" ")
		// +1 keeps left association explicit for same-precedence right children.
		printExpr(b, t.R, prec+1)
		if open {
			b.WriteString(" )")
		}
	case *Unary:
		if t.Op == "NOT" {
			if precNot < parentPrec {
				b.WriteString("( ")
				b.WriteString("NOT ")
				printExpr(b, t.X, precNot)
				b.WriteString(" )")
				return
			}
			b.WriteString("NOT ")
			printExpr(b, t.X, precNot)
			return
		}
		b.WriteString(t.Op)
		printExpr(b, t.X, precUnary)
	case *FuncCall:
		b.WriteString(t.Name)
		b.WriteString("(")
		if t.Star {
			b.WriteString("*")
		} else {
			if t.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range t.Args {
				if i > 0 {
					b.WriteString(" , ")
				}
				printExpr(b, a, 0)
			}
		}
		b.WriteString(")")
	case *Subquery:
		b.WriteString("( ")
		printSelect(b, t.Select)
		b.WriteString(" )")
	case *In:
		printExpr(b, t.X, precCmp+1)
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN ( ")
		if t.Sub != nil {
			printSelect(b, t.Sub)
		} else {
			for i, a := range t.List {
				if i > 0 {
					b.WriteString(" , ")
				}
				printExpr(b, a, 0)
			}
		}
		b.WriteString(" )")
	case *Exists:
		if t.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS ( ")
		printSelect(b, t.Sub)
		b.WriteString(" )")
	case *Between:
		printExpr(b, t.X, precCmp+1)
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		printExpr(b, t.Lo, precAdd)
		b.WriteString(" AND ")
		printExpr(b, t.Hi, precAdd)
	case *IsNull:
		printExpr(b, t.X, precCmp+1)
		b.WriteString(" IS ")
		if t.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL")
	case *Case:
		b.WriteString("CASE")
		if t.Operand != nil {
			b.WriteString(" ")
			printExpr(b, t.Operand, 0)
		}
		for _, w := range t.Whens {
			b.WriteString(" WHEN ")
			printExpr(b, w.Cond, 0)
			b.WriteString(" THEN ")
			printExpr(b, w.Result, 0)
		}
		if t.Else != nil {
			b.WriteString(" ELSE ")
			printExpr(b, t.Else, 0)
		}
		b.WriteString(" END")
	case *Cast:
		b.WriteString("CAST( ")
		printExpr(b, t.X, 0)
		b.WriteString(" AS ")
		b.WriteString(t.Type)
		b.WriteString(" )")
	default:
		panic(fmt.Sprintf("sqlast: unknown expression %T", e))
	}
}
