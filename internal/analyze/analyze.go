// Package analyze extracts the syntactic query properties studied in the
// paper's Section 2.1: char_count, word_count, query_type, table_count,
// join_count, column_count, function_count, predicate_count, nestedness, and
// aggregate usage.
package analyze

import (
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqllex"
	"repro/internal/sqlparse"
)

// Properties holds the syntactic measurements of one query.
type Properties struct {
	CharCount      int
	WordCount      int
	QueryType      string // SELECT, WITH, CREATE, INSERT, UPDATE, DELETE, DECLARE, SET, EXEC, DROP, WAITFOR
	TableCount     int    // distinct base tables referenced
	JoinCount      int    // explicit joins + implicit (comma) joins
	ColumnCount    int    // distinct columns referenced in SELECT clauses
	FunctionCount  int    // total function invocations
	PredicateCount int    // leaf conditions in WHERE clauses
	Nestedness     int    // maximum subquery depth (0 for flat queries)
	Aggregate      bool   // uses aggregate functions
}

// Names of the numeric properties, in the order used by the paper's Figure 4
// correlation matrices.
var CorrelationProperties = []string{
	"Char_Count", "Word_Count", "Table_Count", "Join_Count",
	"Column_Count", "Function_Count", "Predicate_Count", "Nested_Level",
}

// Vector returns the numeric property values in CorrelationProperties order.
func (p Properties) Vector() []float64 {
	return []float64{
		float64(p.CharCount), float64(p.WordCount), float64(p.TableCount),
		float64(p.JoinCount), float64(p.ColumnCount), float64(p.FunctionCount),
		float64(p.PredicateCount), float64(p.Nestedness),
	}
}

// Compute parses the SQL text and measures all properties. When the text
// does not parse, it falls back to lexical measurement (counts derived from
// tokens only).
func Compute(sql string) Properties {
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return lexicalFallback(sql)
	}
	return ComputeStmt(stmt, sql)
}

// ComputeStmt measures properties of a parsed statement; sql is the original
// text used for the character and word counts.
func ComputeStmt(stmt sqlast.Stmt, sql string) Properties {
	p := Properties{
		CharCount: len(sql),
		WordCount: len(sqllex.Words(sql)),
		QueryType: QueryType(stmt, sql),
	}
	tables := map[string]bool{}
	ctes := map[string]bool{}
	columns := map[string]bool{}

	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		switch t := n.(type) {
		case *sqlast.SelectStmt:
			for _, cte := range t.With {
				ctes[strings.ToLower(cte.Name)] = true
			}
			if len(t.From) > 1 {
				p.JoinCount += len(t.From) - 1 // implicit joins
			}
			for _, item := range t.Items {
				collectItemColumns(item.Expr, columns)
			}
			collectPredicates(t.Where, &p.PredicateCount)
		case *sqlast.Join:
			p.JoinCount++
		case *sqlast.TableName:
			tables[strings.ToLower(catalogBare(t.Name))] = true
		case *sqlast.InsertStmt:
			tables[strings.ToLower(catalogBare(t.Table))] = true
		case *sqlast.UpdateStmt:
			tables[strings.ToLower(catalogBare(t.Table))] = true
			collectPredicates(t.Where, &p.PredicateCount)
		case *sqlast.DeleteStmt:
			tables[strings.ToLower(catalogBare(t.Table))] = true
			collectPredicates(t.Where, &p.PredicateCount)
		case *sqlast.DropStmt:
			tables[strings.ToLower(catalogBare(t.Name))] = true
		case *sqlast.FuncCall:
			p.FunctionCount++
			if sqlast.IsAggregate(t.Name) {
				p.Aggregate = true
			}
		}
		return true
	})
	for name := range ctes {
		delete(tables, name)
	}
	p.TableCount = len(tables)
	p.ColumnCount = len(columns)
	p.Nestedness = nestedness(stmt)
	return p
}

// QueryType reports the statement's leading type. WITH is reported as its
// own type, matching the paper's Figure 2a.
func QueryType(stmt sqlast.Stmt, sql string) string {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		if len(t.With) > 0 {
			return "WITH"
		}
		return "SELECT"
	case *sqlast.CreateTableStmt, *sqlast.CreateViewStmt:
		return "CREATE"
	case *sqlast.InsertStmt:
		return "INSERT"
	case *sqlast.UpdateStmt:
		return "UPDATE"
	case *sqlast.DeleteStmt:
		return "DELETE"
	case *sqlast.DeclareStmt:
		return "DECLARE"
	case *sqlast.SetVarStmt:
		return "SET"
	case *sqlast.ExecStmt:
		return "EXEC"
	case *sqlast.DropStmt:
		return "DROP"
	case *sqlast.WaitforStmt:
		return "WAITFOR"
	default:
		words := sqllex.Words(sql)
		if len(words) > 0 {
			return strings.ToUpper(words[0])
		}
		return "UNKNOWN"
	}
}

// collectItemColumns records distinct column names referenced by a SELECT
// item, without entering subqueries (their own SELECT items are collected
// when Walk reaches them).
func collectItemColumns(e sqlast.Expr, out map[string]bool) {
	switch t := e.(type) {
	case *sqlast.ColumnRef:
		out[strings.ToLower(t.Name)] = true
	case *sqlast.Binary:
		collectItemColumns(t.L, out)
		collectItemColumns(t.R, out)
	case *sqlast.Unary:
		collectItemColumns(t.X, out)
	case *sqlast.FuncCall:
		for _, a := range t.Args {
			collectItemColumns(a, out)
		}
	case *sqlast.Case:
		collectItemColumns(t.Operand, out)
		for _, w := range t.Whens {
			collectItemColumns(w.Cond, out)
			collectItemColumns(w.Result, out)
		}
		collectItemColumns(t.Else, out)
	case *sqlast.Cast:
		collectItemColumns(t.X, out)
	case nil:
	}
}

// collectPredicates counts the leaf conditions of a WHERE expression:
// comparisons, IN, BETWEEN, LIKE, IS NULL, and EXISTS each count as one.
// AND/OR/NOT combine but do not count. Subquery bodies are not entered here;
// their own WHERE clauses are counted when Walk reaches them.
func collectPredicates(e sqlast.Expr, n *int) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *sqlast.Binary:
		switch t.Op {
		case "AND", "OR":
			collectPredicates(t.L, n)
			collectPredicates(t.R, n)
		default:
			*n++
		}
	case *sqlast.Unary:
		if t.Op == "NOT" {
			collectPredicates(t.X, n)
			return
		}
		*n++
	default:
		*n++
	}
}

// nestedness computes the maximum subquery nesting depth of a statement.
// A flat query has nestedness 0; each level of subquery (scalar, IN, EXISTS,
// derived table, or CTE body) adds one.
func nestedness(stmt sqlast.Stmt) int {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		return selectDepth(t)
	case *sqlast.CreateTableStmt:
		if t.AsSelect != nil {
			return selectDepth(t.AsSelect)
		}
	case *sqlast.CreateViewStmt:
		return selectDepth(t.Select)
	case *sqlast.InsertStmt:
		if t.Select != nil {
			return selectDepth(t.Select)
		}
	case *sqlast.UpdateStmt:
		return exprDepth(t.Where)
	case *sqlast.DeleteStmt:
		return exprDepth(t.Where)
	}
	return 0
}

func selectDepth(sel *sqlast.SelectStmt) int {
	max := 0
	bump := func(d int) {
		if d > max {
			max = d
		}
	}
	for _, cte := range sel.With {
		bump(1 + selectDepth(cte.Select))
	}
	for _, item := range sel.Items {
		bump(exprDepth(item.Expr))
	}
	for _, ref := range sel.From {
		bump(refDepth(ref))
	}
	bump(exprDepth(sel.Where))
	bump(exprDepth(sel.Having))
	if sel.SetOp != nil {
		bump(selectDepth(sel.SetOp.Right))
	}
	return max
}

func refDepth(ref sqlast.TableRef) int {
	switch t := ref.(type) {
	case *sqlast.SubqueryTable:
		return 1 + selectDepth(t.Select)
	case *sqlast.Join:
		l, r := refDepth(t.Left), refDepth(t.Right)
		d := l
		if r > d {
			d = r
		}
		if od := exprDepth(t.On); od > d {
			d = od
		}
		return d
	default:
		return 0
	}
}

func exprDepth(e sqlast.Expr) int {
	if e == nil {
		return 0
	}
	max := 0
	bump := func(d int) {
		if d > max {
			max = d
		}
	}
	switch t := e.(type) {
	case *sqlast.Subquery:
		bump(1 + selectDepth(t.Select))
	case *sqlast.In:
		bump(exprDepth(t.X))
		if t.Sub != nil {
			bump(1 + selectDepth(t.Sub))
		}
		for _, item := range t.List {
			bump(exprDepth(item))
		}
	case *sqlast.Exists:
		bump(1 + selectDepth(t.Sub))
	case *sqlast.Binary:
		bump(exprDepth(t.L))
		bump(exprDepth(t.R))
	case *sqlast.Unary:
		bump(exprDepth(t.X))
	case *sqlast.FuncCall:
		for _, a := range t.Args {
			bump(exprDepth(a))
		}
	case *sqlast.Between:
		bump(exprDepth(t.X))
		bump(exprDepth(t.Lo))
		bump(exprDepth(t.Hi))
	case *sqlast.IsNull:
		bump(exprDepth(t.X))
	case *sqlast.Case:
		bump(exprDepth(t.Operand))
		for _, w := range t.Whens {
			bump(exprDepth(w.Cond))
			bump(exprDepth(w.Result))
		}
		bump(exprDepth(t.Else))
	case *sqlast.Cast:
		bump(exprDepth(t.X))
	}
	return max
}

// lexicalFallback measures what it can from tokens alone, for queries that
// fail to parse (e.g. after token-removal mutation).
func lexicalFallback(sql string) Properties {
	p := Properties{
		CharCount: len(sql),
		WordCount: len(sqllex.Words(sql)),
		QueryType: "UNKNOWN",
	}
	toks, err := sqllex.LexWords(sql)
	if err != nil || len(toks) == 0 {
		return p
	}
	if toks[0].Kind == sqllex.Keyword {
		p.QueryType = toks[0].Upper()
	}
	for i, t := range toks {
		switch {
		case t.Is("JOIN"):
			p.JoinCount++
		case t.Is("SELECT") && i > 0:
			p.Nestedness++ // crude: nested SELECT keywords
		case t.Kind == sqllex.Ident && i+1 < len(toks) && toks[i+1].Kind == sqllex.LParen:
			p.FunctionCount++
			if sqlast.IsAggregate(t.Text) {
				p.Aggregate = true
			}
		}
	}
	return p
}

func catalogBare(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
