package analyze

import (
	"math/rand"
	"testing"

	"repro/internal/sqlast"
)

func TestComputeSimple(t *testing.T) {
	sql := "SELECT plate , mjd FROM SpecObj WHERE z > 0.5"
	p := Compute(sql)
	if p.QueryType != "SELECT" {
		t.Errorf("QueryType = %q", p.QueryType)
	}
	if p.CharCount != len(sql) {
		t.Errorf("CharCount = %d, want %d", p.CharCount, len(sql))
	}
	if p.WordCount != 10 {
		t.Errorf("WordCount = %d, want 10", p.WordCount)
	}
	if p.TableCount != 1 {
		t.Errorf("TableCount = %d, want 1", p.TableCount)
	}
	if p.ColumnCount != 2 {
		t.Errorf("ColumnCount = %d, want 2", p.ColumnCount)
	}
	if p.PredicateCount != 1 {
		t.Errorf("PredicateCount = %d, want 1", p.PredicateCount)
	}
	if p.Nestedness != 0 || p.Aggregate || p.JoinCount != 0 || p.FunctionCount != 0 {
		t.Errorf("unexpected: %+v", p)
	}
}

func TestQueryTypes(t *testing.T) {
	cases := map[string]string{
		"SELECT 1":                               "SELECT",
		"WITH c AS ( SELECT 1 ) SELECT * FROM c": "WITH",
		"CREATE TABLE t ( a INT )":               "CREATE",
		"CREATE VIEW v AS SELECT 1":              "CREATE",
		"INSERT INTO t VALUES ( 1 )":             "INSERT",
		"UPDATE t SET a = 1":                     "UPDATE",
		"DELETE FROM t":                          "DELETE",
		"DECLARE @x INT":                         "DECLARE",
		"SET @x = 1":                             "SET",
		"EXEC sp 1":                              "EXEC",
		"DROP TABLE t":                           "DROP",
		"WAITFOR DELAY '00:00:01'":               "WAITFOR",
	}
	for sql, want := range cases {
		if got := Compute(sql).QueryType; got != want {
			t.Errorf("QueryType(%q) = %q, want %q", sql, got, want)
		}
	}
}

func TestJoinCounting(t *testing.T) {
	cases := map[string]int{
		"SELECT * FROM a JOIN b ON a.x = b.x":                                1,
		"SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y":            2,
		"SELECT * FROM a , b WHERE a.x = b.x":                                1,
		"SELECT * FROM a , b , c":                                            2,
		"SELECT * FROM a":                                                    0,
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x , c":                       2,
		"SELECT * FROM a WHERE x IN ( SELECT y FROM b JOIN c ON b.i = c.i )": 1,
	}
	for sql, want := range cases {
		if got := Compute(sql).JoinCount; got != want {
			t.Errorf("JoinCount(%q) = %d, want %d", sql, got, want)
		}
	}
}

func TestTableCountDistinctAndCTE(t *testing.T) {
	// Same table twice counts once.
	if got := Compute("SELECT * FROM a AS x JOIN a AS y ON x.i = y.i").TableCount; got != 1 {
		t.Errorf("self-join TableCount = %d, want 1", got)
	}
	// CTE references are not base tables.
	sql := "WITH c AS ( SELECT * FROM base ) SELECT * FROM c"
	if got := Compute(sql).TableCount; got != 1 {
		t.Errorf("cte TableCount = %d, want 1 (only base)", got)
	}
	// Schema-qualified and bare names collapse.
	if got := Compute("SELECT * FROM dbo.t JOIN t AS u ON t.a = u.a").TableCount; got != 1 {
		t.Errorf("qualified TableCount = %d, want 1", got)
	}
}

func TestPredicateCounting(t *testing.T) {
	cases := map[string]int{
		"SELECT a FROM t WHERE a = 1":                                     1,
		"SELECT a FROM t WHERE a = 1 AND b = 2":                           2,
		"SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3":                  3,
		"SELECT a FROM t WHERE NOT a = 1":                                 1,
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2":                         1,
		"SELECT a FROM t WHERE a IN ( 1 , 2 )":                            1,
		"SELECT a FROM t WHERE a IS NULL AND b LIKE 'x%'":                 2,
		"SELECT a FROM t":                                                 0,
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u WHERE c = 1 )":      2,
		"SELECT a FROM t WHERE ( a = 1 OR b = 2 ) AND ( c = 3 OR d = 4 )": 4,
	}
	for sql, want := range cases {
		if got := Compute(sql).PredicateCount; got != want {
			t.Errorf("PredicateCount(%q) = %d, want %d", sql, got, want)
		}
	}
}

func TestNestedness(t *testing.T) {
	cases := map[string]int{
		"SELECT a FROM t": 0,
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u )":                                1,
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u WHERE b IN ( SELECT c FROM v ) )": 2,
		"SELECT a FROM ( SELECT a FROM t ) AS s":                                        1,
		"WITH c AS ( SELECT a FROM t ) SELECT a FROM c":                                 1,
		"SELECT a FROM t WHERE EXISTS ( SELECT 1 FROM u )":                              1,
		"SELECT ( SELECT MAX( b ) FROM u ) FROM t":                                      1,
		// A set-operation branch is a peer, not a nested subquery.
		"SELECT a FROM t UNION SELECT b FROM u":                                        0,
		"WITH c AS ( SELECT a FROM t WHERE a IN ( SELECT b FROM u ) ) SELECT a FROM c": 2,
	}
	for sql, want := range cases {
		if got := Compute(sql).Nestedness; got != want {
			t.Errorf("Nestedness(%q) = %d, want %d", sql, got, want)
		}
	}
}

func TestFunctionAndAggregate(t *testing.T) {
	p := Compute("SELECT COUNT(*) , AVG( z ) , ABS( ra ) FROM t GROUP BY plate")
	if p.FunctionCount != 3 {
		t.Errorf("FunctionCount = %d, want 3", p.FunctionCount)
	}
	if !p.Aggregate {
		t.Error("Aggregate = false")
	}
	p = Compute("SELECT ABS( ra ) FROM t")
	if p.Aggregate {
		t.Error("ABS should not mark aggregate")
	}
}

func TestColumnCountDistinct(t *testing.T) {
	p := Compute("SELECT a , b , a + b , UPPER( c ) FROM t")
	if p.ColumnCount != 3 {
		t.Errorf("ColumnCount = %d, want 3 (a,b,c)", p.ColumnCount)
	}
	// Star contributes no named columns.
	if got := Compute("SELECT * FROM t").ColumnCount; got != 0 {
		t.Errorf("star ColumnCount = %d, want 0", got)
	}
	// Subquery select items count too (collected per SELECT).
	p = Compute("SELECT a FROM t WHERE x IN ( SELECT b FROM u )")
	if p.ColumnCount != 2 {
		t.Errorf("nested ColumnCount = %d, want 2", p.ColumnCount)
	}
}

func TestLexicalFallback(t *testing.T) {
	// Token-removal damage: unparsable but still measurable.
	p := Compute("SELECT plate , FROM SpecObj WHERE z >")
	if p.WordCount != 8 {
		t.Errorf("WordCount = %d, want 8", p.WordCount)
	}
	if p.QueryType != "SELECT" {
		t.Errorf("QueryType = %q, want SELECT", p.QueryType)
	}
	p = Compute("COUNT( mangled")
	if p.QueryType != "UNKNOWN" {
		t.Errorf("QueryType = %q, want UNKNOWN", p.QueryType)
	}
}

func TestVectorOrder(t *testing.T) {
	p := Properties{CharCount: 1, WordCount: 2, TableCount: 3, JoinCount: 4,
		ColumnCount: 5, FunctionCount: 6, PredicateCount: 7, Nestedness: 8}
	v := p.Vector()
	if len(v) != len(CorrelationProperties) {
		t.Fatalf("vector length %d != properties %d", len(v), len(CorrelationProperties))
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		if v[i] != want {
			t.Errorf("Vector[%d] = %v, want %v", i, v[i], want)
		}
	}
}

// Property: Compute never panics and always yields sane bounds on random
// generated ASTs.
func TestComputeRandomASTs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		sel := sqlast.RandSelect(r, sqlast.RandConfig{})
		sql := sqlast.Print(sel)
		p := Compute(sql)
		if p.CharCount != len(sql) {
			t.Fatalf("CharCount mismatch for %q", sql)
		}
		if p.WordCount <= 0 {
			t.Fatalf("WordCount = %d for %q", p.WordCount, sql)
		}
		if p.TableCount < 0 || p.Nestedness < 0 || p.PredicateCount < 0 {
			t.Fatalf("negative property: %+v", p)
		}
		if p.Nestedness > 6 {
			t.Fatalf("absurd nestedness %d for %q", p.Nestedness, sql)
		}
	}
}
