package mutate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/semcheck"
	"repro/internal/sqllex"
	"repro/internal/sqlparse"
	"repro/internal/workload/sdss"
	"repro/internal/workload/sqlshare"
)

func TestInjectEachTypeOnPaperQuery(t *testing.T) {
	w := sdss.Generate(1)
	checker := semcheck.New(w.Schema)
	r := rand.New(rand.NewSource(5))
	sql := "SELECT s.plate , s.mjd , s.z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE s.z > 0.5 AND p.ra > 180"
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range semcheck.PaperErrorTypes {
		inj, ok := InjectError(stmt, w.Schema, code, r)
		if !ok {
			t.Errorf("InjectError(%s) not applicable", code)
			continue
		}
		diags := checker.CheckSQL(inj.SQL)
		if got := semcheck.Primary(diags); got != code {
			t.Errorf("InjectError(%s) produced primary %s\n sql: %s\n diags: %v", code, got, inj.SQL, diags)
		}
	}
}

// Property: every successful injection over the SDSS workload trips the
// oracle with the requested code as a detected diagnostic.
func TestInjectionsDetectedAcrossWorkload(t *testing.T) {
	w := sdss.Generate(1)
	checker := semcheck.New(w.Schema)
	r := rand.New(rand.NewSource(7))
	attempts, successes := 0, 0
	for _, q := range w.Queries {
		if q.Props.QueryType != "SELECT" {
			continue
		}
		for _, code := range semcheck.PaperErrorTypes {
			inj, ok := InjectError(q.Stmt, w.Schema, code, r)
			if !ok {
				continue
			}
			attempts++
			diags := checker.CheckSQL(inj.SQL)
			found := false
			for _, d := range diags {
				if d.Code == code {
					found = true
					break
				}
			}
			if found {
				successes++
			} else if successes < 10 {
				t.Errorf("injection %s undetected\n sql: %s\n diags: %v", code, inj.SQL, diags)
			}
		}
	}
	if attempts == 0 {
		t.Fatal("no injections applied")
	}
	if successes != attempts {
		t.Errorf("detected %d/%d injections", successes, attempts)
	}
}

func TestInjectionsDetectedSQLShare(t *testing.T) {
	w := sqlshare.Generate(1)
	checker := semcheck.New(w.Schema)
	r := rand.New(rand.NewSource(11))
	var undetected int
	for _, q := range w.Queries[:100] {
		for _, code := range semcheck.PaperErrorTypes {
			inj, ok := InjectError(q.Stmt, w.Schema, code, r)
			if !ok {
				continue
			}
			found := false
			for _, d := range checker.CheckSQL(inj.SQL) {
				if d.Code == code {
					found = true
				}
			}
			if !found {
				undetected++
				if undetected <= 5 {
					t.Errorf("undetected %s: %s", code, inj.SQL)
				}
			}
		}
	}
	if undetected > 0 {
		t.Errorf("%d undetected injections", undetected)
	}
}

func TestInjectNotApplicable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := sdss.Generate(1)
	// DROP has no SELECT body: nothing is applicable.
	stmt, _ := sqlparse.ParseStatement("DROP TABLE MyResults")
	for _, code := range semcheck.PaperErrorTypes {
		if _, ok := InjectError(stmt, w.Schema, code, r); ok {
			t.Errorf("InjectError(%s) applied to DROP", code)
		}
	}
	// A constant SELECT offers no alias/ambiguity sites.
	stmt, _ = sqlparse.ParseStatement("SELECT 1 + 2")
	for _, code := range []semcheck.Code{semcheck.CodeAliasUndefined, semcheck.CodeAliasAmbiguous, semcheck.CodeConditionMismatch} {
		if _, ok := InjectError(stmt, w.Schema, code, r); ok {
			t.Errorf("InjectError(%s) applied to constant select", code)
		}
	}
}

func TestRemoveTokenKinds(t *testing.T) {
	sql := "SELECT s.plate , s.mjd FROM SpecObj AS s WHERE s.z > 0.5 AND s.class = 'GALAXY'"
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for _, kind := range TokenKinds {
		rem, ok := RemoveToken(sql, stmt, kind, r)
		if !ok {
			t.Errorf("RemoveToken(%s) not applicable", kind)
			continue
		}
		if rem.Kind != kind {
			t.Errorf("kind = %s, want %s", rem.Kind, kind)
		}
		if rem.SQL == sql {
			t.Errorf("RemoveToken(%s) left the query unchanged", kind)
		}
		if rem.Removed == "" {
			t.Errorf("RemoveToken(%s) recorded no token", kind)
		}
	}
}

func TestRemoveTokenGroundTruth(t *testing.T) {
	sql := "SELECT plate FROM SpecObj WHERE z > 0.5"
	stmt, _ := sqlparse.ParseStatement(sql)
	r := rand.New(rand.NewSource(9))
	rem, ok := RemoveToken(sql, stmt, TokComparison, r)
	if !ok {
		t.Fatal("comparison removal failed")
	}
	if rem.Removed != ">" {
		t.Errorf("removed %q, want >", rem.Removed)
	}
	// ">" is word index 6: SELECT plate FROM SpecObj WHERE z > 0.5
	if rem.WordIndex != 6 {
		t.Errorf("word index = %d, want 6", rem.WordIndex)
	}
	if rem.SQL != "SELECT plate FROM SpecObj WHERE z 0.5" {
		t.Errorf("sql = %q", rem.SQL)
	}
}

func TestRemoveTokenClassification(t *testing.T) {
	sql := "SELECT s.plate , COUNT(*) FROM SpecObj AS s GROUP BY s.plate"
	stmt, _ := sqlparse.ParseStatement(sql)
	r := rand.New(rand.NewSource(2))

	rem, ok := RemoveToken(sql, stmt, TokTable, r)
	if !ok || !strings.EqualFold(rem.Removed, "SpecObj") {
		t.Errorf("table removal = %+v", rem)
	}
	rem, ok = RemoveToken(sql, stmt, TokAlias, r)
	if !ok || !strings.EqualFold(rem.Removed, "s") {
		t.Errorf("alias removal = %+v", rem)
	}
	rem, ok = RemoveToken(sql, stmt, TokColumn, r)
	if !ok || !strings.EqualFold(rem.Removed, "plate") {
		t.Errorf("column removal = %+v (COUNT must not classify as column)", rem)
	}
	// No values or comparisons in this query.
	if _, ok := RemoveToken(sql, stmt, TokValue, r); ok {
		t.Error("value removal should not apply")
	}
	if _, ok := RemoveToken(sql, stmt, TokComparison, r); ok {
		t.Error("comparison removal should not apply")
	}
}

// Property: across a workload, removals always produce shorter texts and
// correct word indexes relative to the original token stream.
func TestRemoveTokenAcrossWorkload(t *testing.T) {
	w := sdss.Generate(1)
	r := rand.New(rand.NewSource(13))
	applied := 0
	for _, q := range w.Queries[:150] {
		for _, kind := range TokenKinds {
			rem, ok := RemoveToken(q.SQL, q.Stmt, kind, r)
			if !ok {
				continue
			}
			applied++
			if len(rem.SQL) >= len(q.SQL) {
				t.Fatalf("removal did not shrink %q -> %q", q.SQL, rem.SQL)
			}
			words := sqllex.Words(q.SQL)
			if rem.WordIndex < 0 || rem.WordIndex >= len(words) {
				t.Fatalf("word index %d out of range (%d words)", rem.WordIndex, len(words))
			}
			if !strings.Contains(words[rem.WordIndex], rem.Removed) {
				t.Fatalf("word %d is %q, does not contain removed %q", rem.WordIndex, words[rem.WordIndex], rem.Removed)
			}
		}
	}
	if applied < 300 {
		t.Errorf("only %d removals applied; expected wide coverage", applied)
	}
}
