// Package mutate generates the benchmark's labeled datasets by corrupting
// clean workload queries: semantic error injection for the syntax_error
// tasks (the paper's six error types) and token removal for the miss_token
// tasks (six token categories with ground-truth positions).
package mutate

import (
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/semcheck"
	"repro/internal/sqlast"
)

// Injection is an error-injection result.
type Injection struct {
	SQL  string
	Type semcheck.Code
}

// InjectError applies the given error type to a copy of the statement.
// It returns false when the query has no applicable site. The result is
// guaranteed (by construction, and verified in tests) to trip the semantic
// oracle with the requested code.
func InjectError(stmt sqlast.Stmt, schema *catalog.Schema, code semcheck.Code, r *rand.Rand) (Injection, bool) {
	sel := selectOf(stmt)
	if sel == nil {
		return Injection{}, false
	}
	clone := sqlast.CloneSelect(sel)
	var ok bool
	switch code {
	case semcheck.CodeAggrAttr:
		ok = injectAggrAttr(clone)
	case semcheck.CodeAggrHaving:
		ok = injectAggrHaving(clone, schema, r)
	case semcheck.CodeNestedMismatch:
		ok = injectNestedMismatch(clone, schema, r)
	case semcheck.CodeConditionMismatch:
		ok = injectConditionMismatch(clone, schema, r)
	case semcheck.CodeAliasUndefined:
		ok = injectAliasUndefined(clone, r)
	case semcheck.CodeAliasAmbiguous:
		ok = injectAliasAmbiguous(clone, schema)
	default:
		return Injection{}, false
	}
	if !ok {
		return Injection{}, false
	}
	out := rewrap(stmt, clone)
	return Injection{SQL: sqlast.Print(out), Type: code}, true
}

// selectOf extracts the SELECT body of a statement, when it has one.
func selectOf(stmt sqlast.Stmt) *sqlast.SelectStmt {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		return t
	case *sqlast.CreateTableStmt:
		return t.AsSelect
	case *sqlast.CreateViewStmt:
		return t.Select
	case *sqlast.InsertStmt:
		return t.Select
	default:
		return nil
	}
}

// rewrap puts a mutated SELECT back into its original statement shell.
func rewrap(orig sqlast.Stmt, sel *sqlast.SelectStmt) sqlast.Stmt {
	switch t := orig.(type) {
	case *sqlast.SelectStmt:
		return sel
	case *sqlast.CreateTableStmt:
		cp := *t
		cp.AsSelect = sel
		return &cp
	case *sqlast.CreateViewStmt:
		cp := *t
		cp.Select = sel
		return &cp
	case *sqlast.InsertStmt:
		cp := *t
		cp.Select = sel
		return &cp
	default:
		return sel
	}
}

// injectAggrAttr makes the projection mix aggregates and bare columns that
// are not covered by GROUP BY (the paper's Q1).
func injectAggrAttr(sel *sqlast.SelectStmt) bool {
	hasBare := false
	for _, item := range sel.Items {
		if _, ok := item.Expr.(*sqlast.ColumnRef); ok {
			hasBare = true
			break
		}
	}
	if hasBare && len(sel.GroupBy) == 0 {
		// Append an aggregate next to the bare columns.
		sel.Items = append(sel.Items, sqlast.SelectItem{
			Expr: &sqlast.FuncCall{Name: "COUNT", Star: true},
		})
		return true
	}
	if len(sel.GroupBy) > 0 {
		// Drop the GROUP BY clause of a grouped query.
		sel.GroupBy = nil
		if sel.Having != nil {
			sel.Having = nil
		}
		for _, item := range sel.Items {
			if _, ok := item.Expr.(*sqlast.ColumnRef); ok {
				return true
			}
		}
		// No bare column was left; add one is not possible reliably.
		return false
	}
	return false
}

// injectAggrHaving filters a non-aggregated column in HAVING (the paper's
// Q2). Applies to grouped queries, or to flat queries by adding a HAVING
// where a WHERE belongs.
func injectAggrHaving(sel *sqlast.SelectStmt, schema *catalog.Schema, r *rand.Rand) bool {
	col := pickNonGroupedColumn(sel, schema, r)
	if col == nil {
		return false
	}
	cond := &sqlast.Binary{Op: ">", L: col, R: sqlast.Number("0")}
	if sel.Having != nil {
		sel.Having = sqlast.And(sel.Having, cond)
	} else {
		sel.Having = cond
	}
	return true
}

// pickNonGroupedColumn finds a column reference over the query's FROM tables
// that does not appear in GROUP BY.
func pickNonGroupedColumn(sel *sqlast.SelectStmt, schema *catalog.Schema, r *rand.Rand) *sqlast.ColumnRef {
	grouped := map[string]bool{}
	for _, g := range sel.GroupBy {
		grouped[strings.ToLower(sqlast.PrintExpr(g))] = true
		if cr, ok := g.(*sqlast.ColumnRef); ok {
			grouped[strings.ToLower(cr.Name)] = true
		}
	}
	var candidates []*sqlast.ColumnRef
	forEachFromTable(sel, func(name, alias string) {
		tab, ok := schema.Table(name)
		if !ok {
			return
		}
		for _, c := range tab.Columns {
			if !c.Type.Numeric() {
				continue
			}
			qual := alias
			ref := sqlast.Col(qual, c.Name)
			key := strings.ToLower(sqlast.PrintExpr(ref))
			if grouped[key] || grouped[strings.ToLower(c.Name)] {
				continue
			}
			candidates = append(candidates, ref)
		}
	})
	if len(candidates) == 0 {
		return nil
	}
	return candidates[r.Intn(len(candidates))]
}

// forEachFromTable visits (tableName, bindingAlias) for every base table in
// the FROM clause. The alias is "" for single unaliased tables.
func forEachFromTable(sel *sqlast.SelectStmt, f func(name, alias string)) {
	var visit func(ref sqlast.TableRef)
	visit = func(ref sqlast.TableRef) {
		switch t := ref.(type) {
		case *sqlast.TableName:
			f(t.Name, t.Alias)
		case *sqlast.Join:
			visit(t.Left)
			visit(t.Right)
		}
	}
	for _, ref := range sel.From {
		visit(ref)
	}
}

// injectNestedMismatch turns a scalar comparand into a multi-row subquery
// (the paper's Q3).
func injectNestedMismatch(sel *sqlast.SelectStmt, schema *catalog.Schema, r *rand.Rand) bool {
	// Find a comparison whose RHS is a literal, inside WHERE or a join ON.
	var target *sqlast.Binary
	var sourceTable string
	visitConditions(sel, func(e sqlast.Expr) {
		if target != nil {
			return
		}
		bin, ok := e.(*sqlast.Binary)
		if !ok {
			return
		}
		switch bin.Op {
		case "=", "<", ">", "<=", ">=", "<>":
			if _, isLit := bin.R.(*sqlast.Literal); isLit {
				if cr, isCol := bin.L.(*sqlast.ColumnRef); isCol {
					target = bin
					_ = cr
				}
			}
		}
	})
	if target == nil {
		return false
	}
	// Pick a table and a column of compatible flavor for the subquery.
	forEachFromTable(sel, func(name, alias string) {
		if sourceTable == "" {
			sourceTable = name
		}
	})
	if sourceTable == "" {
		return false
	}
	tab, ok := schema.Table(sourceTable)
	if !ok || len(tab.Columns) == 0 {
		return false
	}
	lhs, _ := target.L.(*sqlast.ColumnRef)
	subCol := tab.Columns[r.Intn(len(tab.Columns))].Name
	if lhs != nil {
		// Prefer a same-named column so types stay compatible and the only
		// defect is cardinality.
		if _, found := tab.Column(lhs.Name); found {
			subCol = lhs.Name
		}
	}
	target.R = &sqlast.Subquery{Select: &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", subCol)}},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: sourceTable}},
	}}
	return true
}

// visitConditions walks WHERE, HAVING, and join ON expressions shallowly
// (AND/OR/NOT only), calling f on every node.
func visitConditions(sel *sqlast.SelectStmt, f func(sqlast.Expr)) {
	var walk func(e sqlast.Expr)
	walk = func(e sqlast.Expr) {
		if e == nil {
			return
		}
		f(e)
		switch t := e.(type) {
		case *sqlast.Binary:
			if t.Op == "AND" || t.Op == "OR" {
				walk(t.L)
				walk(t.R)
			}
		case *sqlast.Unary:
			walk(t.X)
		}
	}
	walk(sel.Where)
	walk(sel.Having)
	var joins func(ref sqlast.TableRef)
	joins = func(ref sqlast.TableRef) {
		if j, ok := ref.(*sqlast.Join); ok {
			walk(j.On)
			joins(j.Left)
			joins(j.Right)
		}
	}
	for _, ref := range sel.From {
		joins(ref)
	}
}

// injectConditionMismatch replaces a numeric comparand with a string literal
// (the paper's Q4), or a text comparand with a number.
func injectConditionMismatch(sel *sqlast.SelectStmt, schema *catalog.Schema, r *rand.Rand) bool {
	var done bool
	visitConditions(sel, func(e sqlast.Expr) {
		if done {
			return
		}
		bin, ok := e.(*sqlast.Binary)
		if !ok {
			return
		}
		switch bin.Op {
		case "=", "<", ">", "<=", ">=", "<>":
			lit, isLit := bin.R.(*sqlast.Literal)
			if !isLit {
				return
			}
			cr, isCol := bin.L.(*sqlast.ColumnRef)
			if !isCol {
				return
			}
			colType := lookupColumnType(sel, schema, cr)
			switch {
			case colType.Numeric() && lit.Kind == sqlast.LitNumber:
				words := []string{"high", "low", "bright", "faint"}
				bin.R = sqlast.Str(words[r.Intn(len(words))])
				done = true
			case colType == catalog.TypeText && lit.Kind == sqlast.LitString:
				bin.R = sqlast.Number("42")
				done = true
			}
		}
	})
	return done
}

// lookupColumnType resolves a column reference's type against the FROM
// tables (TypeAny when unknown).
func lookupColumnType(sel *sqlast.SelectStmt, schema *catalog.Schema, cr *sqlast.ColumnRef) catalog.Type {
	out := catalog.TypeAny
	forEachFromTable(sel, func(name, alias string) {
		if out != catalog.TypeAny {
			return
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, alias) && !strings.EqualFold(cr.Table, name) {
			return
		}
		if tab, ok := schema.Table(name); ok {
			if c, found := tab.Column(cr.Name); found {
				out = c.Type
			}
		}
	})
	return out
}

// injectAliasUndefined rewrites one qualified reference to use a qualifier
// that is not bound in the query (the paper's Q5: using the bare table name
// after it has been aliased, or a fresh bogus alias).
func injectAliasUndefined(sel *sqlast.SelectStmt, r *rand.Rand) bool {
	aliased := map[string]string{} // alias -> table bare name
	forEachFromTable(sel, func(name, alias string) {
		if alias != "" {
			aliased[strings.ToLower(alias)] = catalog.BareName(name)
		}
	})
	var refs []*sqlast.ColumnRef
	collectColumnRefs(sel, &refs)
	// Prefer the paper's form: replace a bound alias with the shadowed table
	// name.
	for _, ref := range refs {
		if table, ok := aliased[strings.ToLower(ref.Table)]; ok {
			ref.Table = strings.ToLower(table)
			return true
		}
	}
	// Otherwise point any qualified reference at a bogus alias.
	for _, ref := range refs {
		if ref.Table != "" {
			ref.Table = "q" + string(rune('0'+r.Intn(10)))
			return true
		}
	}
	return false
}

// collectColumnRefs gathers every column reference of the top-level select
// (items, where, group by, having, order by, join conditions), without
// entering subqueries.
func collectColumnRefs(sel *sqlast.SelectStmt, out *[]*sqlast.ColumnRef) {
	var walk func(e sqlast.Expr)
	walk = func(e sqlast.Expr) {
		switch t := e.(type) {
		case *sqlast.ColumnRef:
			*out = append(*out, t)
		case *sqlast.Binary:
			walk(t.L)
			walk(t.R)
		case *sqlast.Unary:
			walk(t.X)
		case *sqlast.FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case *sqlast.Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *sqlast.IsNull:
			walk(t.X)
		case *sqlast.In:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *sqlast.Case:
			walk(t.Operand)
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(t.Else)
		case *sqlast.Cast:
			walk(t.X)
		}
	}
	for _, item := range sel.Items {
		walk(item.Expr)
	}
	walk(sel.Where)
	for _, g := range sel.GroupBy {
		walk(g)
	}
	walk(sel.Having)
	for _, o := range sel.OrderBy {
		walk(o.Expr)
	}
	var joins func(ref sqlast.TableRef)
	joins = func(ref sqlast.TableRef) {
		if j, ok := ref.(*sqlast.Join); ok {
			walk(j.On)
			joins(j.Left)
			joins(j.Right)
		}
	}
	for _, ref := range sel.From {
		joins(ref)
	}
}

// injectAliasAmbiguous strips the qualifier from a reference whose column
// name exists in at least two FROM tables (the paper's Q6).
func injectAliasAmbiguous(sel *sqlast.SelectStmt, schema *catalog.Schema) bool {
	// Count column name occurrences across FROM tables.
	occurrences := map[string]int{}
	forEachFromTable(sel, func(name, alias string) {
		tab, ok := schema.Table(name)
		if !ok {
			return
		}
		for _, c := range tab.Columns {
			occurrences[strings.ToLower(c.Name)]++
		}
	})
	var refs []*sqlast.ColumnRef
	collectColumnRefs(sel, &refs)
	for _, ref := range refs {
		if ref.Table != "" && occurrences[strings.ToLower(ref.Name)] >= 2 {
			ref.Table = ""
			return true
		}
	}
	return false
}
