package mutate

import (
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqllex"
)

// TokenKind is one of the paper's six missing-token categories.
type TokenKind string

// Token categories for the miss_token tasks.
const (
	TokKeyword    TokenKind = "keyword"
	TokTable      TokenKind = "table"
	TokColumn     TokenKind = "column"
	TokValue      TokenKind = "value"
	TokAlias      TokenKind = "alias"
	TokComparison TokenKind = "comparison"
)

// TokenKinds lists the categories in the paper's figure order.
var TokenKinds = []TokenKind{TokKeyword, TokTable, TokColumn, TokValue, TokAlias, TokComparison}

// Removal records a token deletion with its ground truth.
type Removal struct {
	SQL       string    // the damaged query
	Removed   string    // the deleted token's text
	Kind      TokenKind // its category
	WordIndex int       // 0-based word position of the deleted token
}

// comparisonOps are the operator texts in the comparison category.
var comparisonOps = map[string]bool{
	"=": true, "<": true, ">": true, "<=": true, ">=": true, "<>": true, "!=": true,
}

// structuralKeywords are removable keywords; trailing modifiers like ASC are
// excluded because their absence leaves a valid query.
var structuralKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "JOIN": true, "ON": true, "AND": true,
	"OR": true, "IN": true, "AS": true, "BETWEEN": true, "LIKE": true,
	"EXISTS": true, "UNION": true, "INTERSECT": true, "EXCEPT": true,
	"VALUES": true, "INTO": true, "SET": true, "TABLE": true, "NOT": true,
}

// RemoveToken deletes one token of the requested kind from the query text,
// returning the damaged SQL and the ground-truth position: the 0-based index
// of the whitespace-separated word that contained the token (the paper's
// "word count position"). It returns false when the query holds no token of
// that kind. Token classification uses the AST: identifiers are split into
// table names, aliases, and columns; function names are never treated as
// columns.
func RemoveToken(sql string, stmt sqlast.Stmt, kind TokenKind, r *rand.Rand) (Removal, bool) {
	toks, err := sqllex.LexWords(sql)
	if err != nil || len(toks) == 0 {
		return Removal{}, false
	}
	names := collectNames(stmt)

	var candidates []int
	for i, t := range toks {
		if classify(t, toks, i, names) == kind {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return Removal{}, false
	}
	idx := candidates[r.Intn(len(candidates))]
	tok := toks[idx]

	// Cut the token's bytes from the original text. Removing one side of a
	// qualified name also drops the now-dangling dot.
	start, end := tok.Pos.Offset, tok.Pos.Offset+len(tok.Text)
	if idx+1 < len(toks) && toks[idx+1].Text == "." && toks[idx+1].Pos.Offset == end {
		end = toks[idx+1].Pos.Offset + 1
	} else if idx > 0 && toks[idx-1].Text == "." && toks[idx-1].Pos.Offset+1 == start {
		start = toks[idx-1].Pos.Offset
	}
	damaged := strings.Join(strings.Fields(sql[:start]+" "+sql[end:]), " ")

	return Removal{
		SQL:       damaged,
		Removed:   tok.Text,
		Kind:      kind,
		WordIndex: wordIndexAt(sql, tok.Pos.Offset),
	}, true
}

// wordIndexAt returns the index of the whitespace-separated word containing
// the byte offset.
func wordIndexAt(sql string, offset int) int {
	idx := -1
	inWord := false
	for i := 0; i <= offset && i < len(sql); i++ {
		c := sql[i]
		space := c == ' ' || c == '\t' || c == '\n' || c == '\r'
		if !space && !inWord {
			idx++
			inWord = true
		} else if space {
			inWord = false
		}
	}
	if idx < 0 {
		return 0
	}
	return idx
}

// names holds the identifier classification sets extracted from a statement.
type nameSets struct {
	tables  map[string]bool
	aliases map[string]bool
}

func collectNames(stmt sqlast.Stmt) nameSets {
	ns := nameSets{tables: map[string]bool{}, aliases: map[string]bool{}}
	if stmt == nil {
		return ns
	}
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		switch t := n.(type) {
		case *sqlast.TableName:
			ns.tables[strings.ToLower(catalog.BareName(t.Name))] = true
			if t.Alias != "" {
				ns.aliases[strings.ToLower(t.Alias)] = true
			}
		case *sqlast.SubqueryTable:
			if t.Alias != "" {
				ns.aliases[strings.ToLower(t.Alias)] = true
			}
		case *sqlast.SelectStmt:
			for _, cte := range t.With {
				ns.tables[strings.ToLower(cte.Name)] = true
			}
		case *sqlast.ColumnRef:
			if t.Table != "" {
				ns.aliases[strings.ToLower(catalog.BareName(t.Table))] = true
			}
		}
		return true
	})
	// Statement-level table references.
	switch t := stmt.(type) {
	case *sqlast.CreateTableStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Name))] = true
	case *sqlast.CreateViewStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Name))] = true
	case *sqlast.InsertStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Table))] = true
	case *sqlast.UpdateStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Table))] = true
	case *sqlast.DeleteStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Table))] = true
	case *sqlast.DropStmt:
		ns.tables[strings.ToLower(catalog.BareName(t.Name))] = true
	}
	// A name used both as alias and table counts as a table.
	for name := range ns.tables {
		delete(ns.aliases, name)
	}
	return ns
}

// classify determines the category of one token in context; returns "" for
// tokens that belong to no category (punctuation, functions, etc).
func classify(t sqllex.Token, toks []sqllex.Token, i int, ns nameSets) TokenKind {
	switch t.Kind {
	case sqllex.Keyword:
		if structuralKeywords[t.Upper()] {
			return TokKeyword
		}
		return ""
	case sqllex.Number, sqllex.String:
		return TokValue
	case sqllex.Op:
		if comparisonOps[t.Text] {
			return TokComparison
		}
		return ""
	case sqllex.Ident, sqllex.QuotedIdent:
		// Function name: identifier directly followed by '('.
		if i+1 < len(toks) && toks[i+1].Kind == sqllex.LParen {
			return ""
		}
		lower := strings.ToLower(t.Val())
		if ns.tables[lower] {
			return TokTable
		}
		if ns.aliases[lower] {
			return TokAlias
		}
		return TokColumn
	default:
		return ""
	}
}
