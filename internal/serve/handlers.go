package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/nlgen"
	"repro/internal/prompt"
	"repro/internal/runner"
	"repro/internal/sqlparse"
)

// maxEvalBody bounds eval request bodies (1 MiB of JSON is thousands of
// queries; anything larger is a mistake or abuse).
const maxEvalBody = 1 << 20

// evalTasks names the five task endpoints.
var evalTasks = map[string]bool{
	"syntax": true, "tokens": true, "equiv": true, "perf": true, "explain": true,
}

// httpError writes a JSON error object with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorLine{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.EnvCacheSize.Store(int64(s.envs.Len()))
	s.metrics.ArtifactCacheSize.Store(int64(s.artifacts.Len()))
	// Service counters at the top level (stable keys), per-model usage
	// telemetry nested under "models".
	payload := make(map[string]any)
	for k, v := range s.metrics.Snapshot() {
		payload[k] = v
	}
	payload["models"] = s.llmStats.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleExperiment serves one rendered paper artifact from the seed-keyed
// cache; concurrent cold requests coalesce onto a single render.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := experiments.ByID(id); !ok {
		httpError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	key := artifactKey{envKey: envKey{seed: s.cfg.DefaultSeed, verify: s.cfg.Verify}, id: id}
	if q := r.URL.Query().Get("seed"); q != "" {
		seed, err := strconv.ParseInt(q, 10, 64)
		if err != nil || seed <= 0 {
			httpError(w, http.StatusBadRequest, "invalid seed %q", q)
			return
		}
		key.seed = seed
	}
	if q := r.URL.Query().Get("verify"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid verify %q", q)
			return
		}
		key.verify = v
	}
	out, err := s.artifact(key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "rendering %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// handleEval evaluates submitted SQL or benchmark examples against one model
// and streams results back as NDJSON in example order.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	task := r.PathValue("task")
	if !evalTasks[task] {
		httpError(w, http.StatusNotFound, "unknown eval task %q (syntax, tokens, equiv, perf, explain)", task)
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEvalBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, "model is required")
		return
	}
	// Reject example sources that don't apply to this task instead of
	// silently ignoring them — a stray field would otherwise stream the
	// whole labeled cell where the caller meant to submit two queries.
	if task == "equiv" {
		if req.SQL != nil {
			httpError(w, http.StatusBadRequest, "the equiv task takes \"pairs\", not \"sql\"")
			return
		}
		if len(req.Pairs) > 0 && len(req.IDs) > 0 {
			httpError(w, http.StatusBadRequest, "pairs and ids are mutually exclusive")
			return
		}
		if req.Pairs != nil && len(req.Pairs) == 0 {
			httpError(w, http.StatusBadRequest, "pairs is empty")
			return
		}
	} else {
		if req.Pairs != nil {
			httpError(w, http.StatusBadRequest, "only the equiv task takes \"pairs\"; use \"sql\"")
			return
		}
		if len(req.SQL) > 0 && len(req.IDs) > 0 {
			httpError(w, http.StatusBadRequest, "sql and ids are mutually exclusive")
			return
		}
		if req.SQL != nil && len(req.SQL) == 0 {
			httpError(w, http.StatusBadRequest, "sql is empty")
			return
		}
	}
	if req.Seed < 0 {
		httpError(w, http.StatusBadRequest, "invalid seed %d", req.Seed)
		return
	}
	if req.Params != nil {
		if req.Params.MaxTokens < 0 {
			httpError(w, http.StatusBadRequest, "invalid max_tokens %d", req.Params.MaxTokens)
			return
		}
		if t := req.Params.Temperature; t != nil && (*t < 0 || *t > 2) {
			httpError(w, http.StatusBadRequest, "invalid temperature %v", *t)
			return
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	env, err := s.env(envKey{seed: seed, verify: s.cfg.Verify})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building benchmark: %v", err)
		return
	}
	client, err := env.Registry.Get(req.Model)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Caller-supplied completion parameters apply to every request of the
	// batch; explicit per-request values (none today) would win.
	if p := req.Params; p != nil {
		client = llm.Chain(client, llm.WithDefaults(p.Temperature, p.MaxTokens, p.Seed))
	}
	ds := req.Dataset
	if ds == "" {
		ds = core.SDSS
	}
	switch task {
	case "syntax", "tokens", "equiv":
		if env.Bench.Syntax[ds] == nil {
			httpError(w, http.StatusBadRequest, "unknown dataset %q (SDSS, SQLShare, Join-Order)", ds)
			return
		}
	case "perf":
		ds = core.SDSS // performance_pred is SDSS-only
	case "explain":
		ds = core.Spider // query_exp is Spider-only
	}

	ctx := runner.WithParallelism(r.Context(), env.Parallel)
	st := &stream{w: w, metrics: s.metrics, task: task}
	switch task {
	case "syntax":
		s.evalSyntax(ctx, st, env, client, req, ds)
	case "tokens":
		s.evalTokens(ctx, st, env, client, req, ds)
	case "equiv":
		s.evalEquiv(ctx, st, env, client, req, ds)
	case "perf":
		s.evalPerf(ctx, st, env, client, req)
	case "explain":
		s.evalExplain(ctx, st, env, client, req)
	}
}

// stream writes NDJSON eval lines, flushing after each so results reach the
// client as they complete. Headers go out lazily on the first line, which
// lets example-selection errors still return a clean 4xx.
type stream struct {
	w       http.ResponseWriter
	metrics *Metrics
	task    string
	started bool
	index   int
}

// fail reports an error: as a 4xx/5xx when nothing has been written, as a
// terminal NDJSON error line when the stream is already flowing.
func (st *stream) fail(status int, format string, args ...any) {
	if !st.started {
		httpError(st.w, status, format, args...)
		return
	}
	json.NewEncoder(st.w).Encode(ErrorLine{Error: fmt.Sprintf(format, args...)})
}

// send writes one result line.
func (st *stream) send(line *EvalLine) error {
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
		st.started = true
	}
	line.Index = st.index
	line.Task = st.task
	st.index++
	if err := json.NewEncoder(st.w).Encode(line); err != nil {
		return err
	}
	if f, ok := st.w.(http.Flusher); ok {
		f.Flush()
	}
	st.metrics.ResultsStreamed.Add(1)
	return nil
}

// selectExamples picks the request's examples from a benchmark dataset:
// the whole cell when no IDs are given, else the named labeled examples.
func selectExamples[E any](all []E, id func(E) string, ids []string) ([]E, error) {
	if len(ids) == 0 {
		return all, nil
	}
	byID := make(map[string]E, len(all))
	for _, ex := range all {
		byID[id(ex)] = ex
	}
	out := make([]E, 0, len(ids))
	for _, want := range ids {
		ex, ok := byID[want]
		if !ok {
			return nil, fmt.Errorf("unknown example ID %q", want)
		}
		out = append(out, ex)
	}
	return out, nil
}

// usageInfo and latencyMS shape a result's telemetry for an EvalLine.
func usageInfo(u llm.Usage) *UsageInfo {
	if u == (llm.Usage{}) {
		return nil
	}
	return &UsageInfo{PromptTokens: u.PromptTokens, CompletionTokens: u.CompletionTokens}
}

func latencyMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func (s *Server) evalSyntax(ctx context.Context, st *stream, env *experiments.Env, client llm.Client, req EvalRequest, ds string) {
	labeled := len(req.SQL) == 0
	var examples []core.SyntaxExample
	if !labeled {
		for i, q := range req.SQL {
			examples = append(examples, core.SyntaxExample{ID: fmt.Sprintf("adhoc/%d", i), SQL: q})
		}
	} else {
		var err error
		examples, err = selectExamples(env.Bench.Syntax[ds], func(e core.SyntaxExample) string { return e.ID }, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	err := core.RunSyntaxStream(ctx, client, prompt.Default(prompt.SyntaxError), examples, func(r core.SyntaxResult) error {
		line := &EvalLine{
			ID: r.Example.ID, SQL: r.Example.SQL,
			PredHasError: boolp(r.PredHas), PredErrorType: r.PredType,
			Response: r.Response,
			Usage:    usageInfo(r.Usage), LatencyMS: latencyMS(r.Latency),
		}
		if labeled {
			line.WantHasError = boolp(r.Example.HasError)
			line.WantErrorType = string(r.Example.Type)
			line.Correct = boolp(r.PredHas == r.Example.HasError)
		}
		return st.send(line)
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}

func (s *Server) evalTokens(ctx context.Context, st *stream, env *experiments.Env, client llm.Client, req EvalRequest, ds string) {
	labeled := len(req.SQL) == 0
	var examples []core.TokenExample
	if !labeled {
		for i, q := range req.SQL {
			examples = append(examples, core.TokenExample{ID: fmt.Sprintf("adhoc/%d", i), SQL: q, Position: -1})
		}
	} else {
		var err error
		examples, err = selectExamples(env.Bench.Tokens[ds], func(e core.TokenExample) string { return e.ID }, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	err := core.RunTokensStream(ctx, client, prompt.Default(prompt.MissToken), examples, func(r core.TokenResult) error {
		line := &EvalLine{
			ID: r.Example.ID, SQL: r.Example.SQL,
			PredMissing: boolp(r.PredMiss), PredKind: r.PredKind, PredPosition: intp(r.PredPos),
			Response: r.Response,
			Usage:    usageInfo(r.Usage), LatencyMS: latencyMS(r.Latency),
		}
		if labeled {
			line.WantMissing = boolp(r.Example.Missing)
			line.WantKind = string(r.Example.Kind)
			line.WantPosition = intp(r.Example.Position)
			line.Correct = boolp(r.PredMiss == r.Example.Missing)
		}
		return st.send(line)
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}

func (s *Server) evalEquiv(ctx context.Context, st *stream, env *experiments.Env, client llm.Client, req EvalRequest, ds string) {
	labeled := len(req.Pairs) == 0
	var examples []core.EquivExample
	if !labeled {
		for i, p := range req.Pairs {
			examples = append(examples, core.EquivExample{ID: fmt.Sprintf("adhoc/%d", i), SQL1: p[0], SQL2: p[1]})
		}
	} else {
		var err error
		examples, err = selectExamples(env.Bench.Equiv[ds], func(e core.EquivExample) string { return e.ID }, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	err := core.RunEquivStream(ctx, client, prompt.Default(prompt.QueryEquiv), examples, func(r core.EquivResult) error {
		line := &EvalLine{
			ID: r.Example.ID, SQL: r.Example.SQL1, SQL2: r.Example.SQL2,
			PredEquivalent: boolp(r.PredEquiv), PredEquivType: r.PredType,
			Response: r.Response,
			Usage:    usageInfo(r.Usage), LatencyMS: latencyMS(r.Latency),
		}
		if labeled {
			line.WantEquivalent = boolp(r.Example.Equivalent)
			line.WantEquivType = string(r.Example.Type)
			line.Correct = boolp(r.PredEquiv == r.Example.Equivalent)
		}
		return st.send(line)
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}

func (s *Server) evalPerf(ctx context.Context, st *stream, env *experiments.Env, client llm.Client, req EvalRequest) {
	labeled := len(req.SQL) == 0
	var examples []core.PerfExample
	if !labeled {
		for i, q := range req.SQL {
			examples = append(examples, core.PerfExample{ID: fmt.Sprintf("adhoc/%d", i), SQL: q})
		}
	} else {
		var err error
		examples, err = selectExamples(env.Bench.Perf, func(e core.PerfExample) string { return e.ID }, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	err := core.RunPerfStream(ctx, client, prompt.Default(prompt.PerfPred), examples, func(r core.PerfResult) error {
		line := &EvalLine{
			ID: r.Example.ID, SQL: r.Example.SQL,
			PredCostly: boolp(r.PredCostly),
			Response:   r.Response,
			Usage:      usageInfo(r.Usage), LatencyMS: latencyMS(r.Latency),
		}
		if labeled {
			line.WantCostly = boolp(r.Example.Costly)
			line.Correct = boolp(r.PredCostly == r.Example.Costly)
		}
		return st.send(line)
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}

func (s *Server) evalExplain(ctx context.Context, st *stream, env *experiments.Env, client llm.Client, req EvalRequest) {
	labeled := len(req.SQL) == 0
	var examples []core.ExplainExample
	if !labeled {
		for i, q := range req.SQL {
			ex := core.ExplainExample{ID: fmt.Sprintf("adhoc/%d", i), SQL: q}
			// Reference facts for ad-hoc queries come from our own parser;
			// unparseable input gets no facts and coverage is then vacuous.
			if sel, err := sqlparse.ParseSelect(q); err == nil {
				ex.Facts = nlgen.Extract(sel)
			}
			examples = append(examples, ex)
		}
	} else {
		var err error
		examples, err = selectExamples(env.Bench.Explain, func(e core.ExplainExample) string { return e.ID }, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}
	err := core.RunExplainStream(ctx, client, prompt.Default(prompt.QueryExp), examples, func(r core.ExplainResult) error {
		return st.send(&EvalLine{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Explanation: r.Explanation,
			Coverage:    floatp(r.Coverage),
			Usage:       usageInfo(r.Usage), LatencyMS: latencyMS(r.Latency),
		})
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}
