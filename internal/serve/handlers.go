package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/runner"
)

// maxEvalBody bounds eval request bodies (1 MiB of JSON is thousands of
// queries; anything larger is a mistake or abuse).
const maxEvalBody = 1 << 20

// httpError writes a JSON error object with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorLine{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.EnvCacheSize.Store(int64(s.envs.Len()))
	s.metrics.ArtifactCacheSize.Store(int64(s.artifacts.Len()))
	// Service counters at the top level (stable keys), per-model usage
	// telemetry nested under "models".
	payload := make(map[string]any)
	for k, v := range s.metrics.Snapshot() {
		payload[k] = v
	}
	if byTask := s.metrics.FailedByTask(); len(byTask) > 0 {
		payload["failed_by_task"] = byTask
	}
	payload["models"] = s.llmStats.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

// handleTrace serves the bounded in-memory span ring: the most recent
// completed spans (oldest first) plus how many older spans the ring has
// evicted. Intended for ad-hoc debugging — scrape it after a request to see
// that request's span tree by trace id (the X-Request-Id the client saw).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans, evicted := s.tracer.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(TraceSnapshot{Spans: spans, Evicted: evicted})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleTasks serves task discovery: every registered task with its
// identity, skill tags, dataset topology, and accepted request parameters —
// the machine-readable form of the paper's Table 1 column set. The listing
// is driven entirely by the core registry, so newly registered tasks appear
// without any serve changes.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	out := make([]TaskInfo, 0)
	for _, t := range core.Tasks() {
		skills := map[string]int{}
		for skill, level := range t.Skills() {
			skills[string(skill)] = level
		}
		input := "sql"
		if t.PairInput() {
			input = "pairs"
		}
		out = append(out, TaskInfo{
			ID:             t.ID(),
			Name:           t.Name(),
			Description:    t.Description(),
			Skills:         skills,
			Datasets:       t.Datasets(),
			DefaultDataset: t.DefaultDataset(),
			Input:          input,
			Params:         []string{"temperature", "max_tokens", "seed", "continue_on_error", "max_failures"},
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleExperiment serves one rendered paper artifact from the seed-keyed
// cache; concurrent cold requests coalesce onto a single render.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := experiments.ByID(id); !ok {
		httpError(w, http.StatusNotFound, "unknown experiment %q", id)
		return
	}
	key := artifactKey{envKey: envKey{seed: s.cfg.DefaultSeed, verify: s.cfg.Verify}, id: id}
	if q := r.URL.Query().Get("seed"); q != "" {
		seed, err := strconv.ParseInt(q, 10, 64)
		if err != nil || seed <= 0 {
			httpError(w, http.StatusBadRequest, "invalid seed %q", q)
			return
		}
		key.seed = seed
	}
	if q := r.URL.Query().Get("verify"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid verify %q", q)
			return
		}
		key.verify = v
	}
	out, err := s.artifact(key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "rendering %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// handleEval evaluates submitted SQL or benchmark examples against one model
// and streams results back as NDJSON in example order. The handler is fully
// registry-driven: example selection, prompting, grading, and line
// rendering all come from the task's registry entry, so it serves any
// registered task — including ones added after this code was written.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("task")
	task, ok := core.TaskByID(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown eval task %q (registered: %s)",
			id, strings.Join(core.TaskIDs(), ", "))
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEvalBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, "model is required")
		return
	}
	// Reject example sources that don't apply to this task instead of
	// silently ignoring them — a stray field would otherwise stream the
	// whole labeled cell where the caller meant to submit two queries.
	if task.PairInput() {
		if req.SQL != nil {
			httpError(w, http.StatusBadRequest, "the %s task takes \"pairs\", not \"sql\"", task.ID())
			return
		}
		if len(req.Pairs) > 0 && len(req.IDs) > 0 {
			httpError(w, http.StatusBadRequest, "pairs and ids are mutually exclusive")
			return
		}
		if req.Pairs != nil && len(req.Pairs) == 0 {
			httpError(w, http.StatusBadRequest, "pairs is empty")
			return
		}
	} else {
		if req.Pairs != nil {
			httpError(w, http.StatusBadRequest, "only pair tasks take \"pairs\"; use \"sql\"")
			return
		}
		if len(req.SQL) > 0 && len(req.IDs) > 0 {
			httpError(w, http.StatusBadRequest, "sql and ids are mutually exclusive")
			return
		}
		if req.SQL != nil && len(req.SQL) == 0 {
			httpError(w, http.StatusBadRequest, "sql is empty")
			return
		}
	}
	if req.Seed < 0 {
		httpError(w, http.StatusBadRequest, "invalid seed %d", req.Seed)
		return
	}
	if req.Params != nil {
		if req.Params.MaxTokens < 0 {
			httpError(w, http.StatusBadRequest, "invalid max_tokens %d", req.Params.MaxTokens)
			return
		}
		if t := req.Params.Temperature; t != nil && (*t < 0 || *t > 2) {
			httpError(w, http.StatusBadRequest, "invalid temperature %v", *t)
			return
		}
	}
	// Resolve the dataset against the task's topology: single-dataset tasks
	// are pinned, the rest validate the requested cell.
	datasets := task.Datasets()
	ds := datasets[0]
	if len(datasets) > 1 {
		ds = req.Dataset
		if ds == "" {
			ds = task.DefaultDataset()
		}
		known := false
		for _, d := range datasets {
			if d == ds {
				known = true
				break
			}
		}
		if !known {
			httpError(w, http.StatusBadRequest, "unknown dataset %q (%s)", ds, strings.Join(datasets, ", "))
			return
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.DefaultSeed
	}
	env, err := s.env(envKey{seed: seed, verify: s.cfg.Verify})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building benchmark: %v", err)
		return
	}
	client, err := env.Registry.Get(req.Model)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// An open circuit breaker means every completion would fast-fail:
	// shed the whole eval up front with 503 + Retry-After instead of
	// streaming a response full of identical errors. Half-open is admitted
	// so probes can close the breaker.
	ms := s.llmStats.Model(req.Model)
	if llm.BreakerState(ms.BreakerState.Load()) == llm.BreakerOpen {
		if wait := time.Until(time.Unix(0, ms.BreakerOpenUntil.Load())); wait > 0 {
			s.metrics.BreakerSheds.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
			httpError(w, http.StatusServiceUnavailable,
				"circuit breaker open for model %s: backend shedding load", req.Model)
			return
		}
	}
	// Caller-supplied completion parameters apply to every request of the
	// batch; explicit per-request values (none today) would win.
	if p := req.Params; p != nil {
		client = llm.Chain(client, llm.WithDefaults(p.Temperature, p.MaxTokens, p.Seed))
	}
	// Spend accounting wraps the client itself so every completion is
	// charged the moment it finishes — a caller that drops the connection
	// mid-stream still pays for the work already done, not just for the
	// lines it received.
	if debit := debitFrom(r.Context()); debit != nil {
		client = spendClient{Client: client, debit: debit}
	}

	st := &stream{w: w, metrics: s.metrics, task: task.ID()}

	// Select the examples: ad-hoc statements (unlabeled) or benchmark cell
	// examples (labeled, optionally narrowed by ID).
	labeled := true
	var examples []core.Example
	adhoc := func(i int, sql []string) bool {
		ex, err := task.AdHoc(fmt.Sprintf("adhoc/%d", i), sql)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return false
		}
		examples = append(examples, ex)
		return true
	}
	switch {
	case task.PairInput() && len(req.Pairs) > 0:
		labeled = false
		for i, p := range req.Pairs {
			if !adhoc(i, []string{p[0], p[1]}) {
				return
			}
		}
	case !task.PairInput() && len(req.SQL) > 0:
		labeled = false
		for i, q := range req.SQL {
			if !adhoc(i, []string{q}) {
				return
			}
		}
	default:
		cell, ok := task.Cell(env.Bench, ds)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown dataset %q (%s)", ds, strings.Join(datasets, ", "))
			return
		}
		examples, err = selectExamples(cell, req.IDs)
		if err != nil {
			st.fail(http.StatusBadRequest, "%v", err)
			return
		}
	}

	ctx := runner.WithParallelism(r.Context(), env.Parallel)
	opts := core.RunOpts{}
	if p := req.Params; p != nil {
		opts.ContinueOnError = p.ContinueOnError
		opts.MaxFailures = p.MaxFailures
	}
	err = task.RunStreamOpts(ctx, client, examples, opts, func(idx int, res any, err error) error {
		if err != nil {
			s.metrics.FailedExample(task.ID())
			return st.send(core.FailedView(examples[idx], err))
		}
		return st.send(task.View(res, labeled))
	})
	if err != nil {
		st.fail(http.StatusInternalServerError, "eval: %v", err)
	}
}

// stream writes NDJSON eval lines, flushing after each so results reach the
// client as they complete. Headers go out lazily on the first line, which
// lets example-selection errors still return a clean 4xx.
type stream struct {
	w       http.ResponseWriter
	metrics *Metrics
	task    string
	started bool
	index   int
}

// fail reports an error: as a 4xx/5xx when nothing has been written, as a
// terminal NDJSON error line when the stream is already flowing.
func (st *stream) fail(status int, format string, args ...any) {
	if !st.started {
		httpError(st.w, status, format, args...)
		return
	}
	json.NewEncoder(st.w).Encode(ErrorLine{Error: fmt.Sprintf(format, args...)})
}

// send renders one result line from its task-agnostic view.
func (st *stream) send(view core.ResultView) error {
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
		st.started = true
	}
	line, err := encodeLine(st.index, st.task, view)
	if err != nil {
		return err
	}
	st.index++
	if _, err := st.w.Write(line); err != nil {
		return err
	}
	if f, ok := st.w.(http.Flusher); ok {
		f.Flush()
	}
	st.metrics.ResultsStreamed.Add(1)
	return nil
}

// spendClient charges each completed request's tokens against the caller's
// budget as it finishes, delivered or not, so aborted streams cannot evade
// the spend bound.
type spendClient struct {
	llm.Client
	debit func(tokens int)
}

func (c spendClient) Do(ctx context.Context, req llm.Request) (llm.Response, error) {
	resp, err := c.Client.Do(ctx, req)
	if err == nil {
		c.debit(resp.Usage.CompletionTokens)
	}
	return resp, err
}

// selectExamples picks the request's examples from a benchmark cell: the
// whole cell when no IDs are given, else the named labeled examples.
func selectExamples(all []core.Example, ids []string) ([]core.Example, error) {
	if len(ids) == 0 {
		return all, nil
	}
	byID := make(map[string]core.Example, len(all))
	for _, ex := range all {
		byID[ex.ID] = ex
	}
	out := make([]core.Example, 0, len(ids))
	for _, want := range ids {
		ex, ok := byID[want]
		if !ok {
			return nil, fmt.Errorf("unknown example ID %q", want)
		}
		out = append(out, ex)
	}
	return out, nil
}

// debitFrom returns the completion-token debit hook the spend-admission
// middleware injected, if any.
func debitFrom(ctx context.Context) func(int) {
	f, _ := ctx.Value(spendDebitKey{}).(func(int))
	return f
}
