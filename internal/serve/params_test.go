package serve

import (
	"net/http"
	"testing"
)

// Request params thread through to the model client: a max_tokens cap must
// show up as truncated completions in the per-line usage.
func TestEvalParamsMaxTokens(t *testing.T) {
	_, url := testServerAndURL(t)
	sql := []string{"SELECT plate , mjd FROM SpecObj WHERE z > 0.5"}

	full := decodeNDJSON(t, postEval(t, url, "syntax", EvalRequest{Model: "GPT4", SQL: sql}))
	if len(full) != 1 || full[0].Usage == nil {
		t.Fatalf("no usage on baseline line: %+v", full)
	}
	if full[0].Usage.CompletionTokens <= 2 {
		t.Fatalf("baseline completion too short to test truncation: %+v", full[0].Usage)
	}
	if full[0].LatencyMS <= 0 {
		t.Errorf("latency_ms = %v", full[0].LatencyMS)
	}

	capped := decodeNDJSON(t, postEval(t, url, "syntax", EvalRequest{
		Model: "GPT4", SQL: sql,
		Params: &EvalParams{MaxTokens: 2},
	}))
	if len(capped) != 1 || capped[0].Usage == nil {
		t.Fatalf("no usage on capped line: %+v", capped)
	}
	if capped[0].Usage.CompletionTokens != 2 {
		t.Errorf("capped completion tokens = %d, want 2", capped[0].Usage.CompletionTokens)
	}
	if len(capped[0].Response) >= len(full[0].Response) {
		t.Errorf("max_tokens did not truncate: %q vs %q", capped[0].Response, full[0].Response)
	}
	// Prompt accounting is unaffected by the cap.
	if capped[0].Usage.PromptTokens != full[0].Usage.PromptTokens {
		t.Errorf("prompt tokens changed under cap: %d vs %d",
			capped[0].Usage.PromptTokens, full[0].Usage.PromptTokens)
	}
}

// Temperature and model-side seed are accepted (the simulators ignore them,
// but the request must validate and evaluate normally).
func TestEvalParamsAccepted(t *testing.T) {
	_, url := testServerAndURL(t)
	temp := 0.0
	seed := int64(7)
	lines := decodeNDJSON(t, postEval(t, url, "perf", EvalRequest{
		Model:  "GPT4",
		SQL:    []string{"SELECT TOP 10 objid FROM PhotoObj"},
		Params: &EvalParams{Temperature: &temp, Seed: &seed},
	}))
	if len(lines) != 1 || lines[0].PredCostly == nil {
		t.Fatalf("lines = %+v", lines)
	}
}

// Invalid params are rejected before any evaluation starts.
func TestEvalParamsValidation(t *testing.T) {
	_, url := testServerAndURL(t)
	bad := []EvalRequest{
		{Model: "GPT4", SQL: []string{"SELECT 1"}, Params: &EvalParams{MaxTokens: -1}},
		{Model: "GPT4", SQL: []string{"SELECT 1"}, Params: &EvalParams{Temperature: f(-0.5)}},
		{Model: "GPT4", SQL: []string{"SELECT 1"}, Params: &EvalParams{Temperature: f(9)}},
	}
	for i, req := range bad {
		resp := postEval(t, url, "syntax", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad params %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func f(v float64) *float64 { return &v }
