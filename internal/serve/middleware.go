package serve

import (
	"context"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

// middleware wraps a handler.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so the first listed runs outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the response status for logging. It deliberately
// does not wrap Flush/Hijack generically: the eval handlers need Flusher,
// so it forwards that one interface explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON streaming works through
// the middleware stack.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID roots every request in a span whose trace id doubles as the
// request id: an incoming W3C traceparent header (or bare X-Request-Id)
// propagates the caller's trace id, otherwise a fresh one is generated. The
// id is echoed in the X-Request-Id response header before the handler runs
// and carried on the context so the access log — and every span started
// below, down to individual LLM attempts — correlates by trace id.
func requestID(tracer *obs.Tracer) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := incomingTraceID(r)
			if id == "" {
				id = tracer.NewTraceID()
			}
			w.Header().Set("X-Request-Id", id)
			ctx, span := obs.StartTrace(obs.With(r.Context(), tracer), "http.request", id)
			span.SetString("method", r.Method)
			span.SetString("path", r.URL.Path)
			sw := &statusWriter{ResponseWriter: w}
			next.ServeHTTP(sw, r.WithContext(ctx))
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			span.SetInt("status", int64(sw.status))
			span.End()
		})
	}
}

// incomingTraceID extracts a propagated trace id from the request:
// traceparent ("00-<32 hex trace>-<16 hex span>-<flags>") wins, then a
// well-formed X-Request-Id. Anything malformed is ignored so a garbage
// header cannot pollute the trace ring with unparseable ids.
func incomingTraceID(r *http.Request) string {
	if tp := r.Header.Get("traceparent"); tp != "" {
		parts := strings.Split(tp, "-")
		if len(parts) >= 3 && isHexID(parts[1], 32) && parts[1] != strings.Repeat("0", 32) {
			return strings.ToLower(parts[1])
		}
	}
	if id := r.Header.Get("X-Request-Id"); isHexID(id, 32) {
		return strings.ToLower(id)
	}
	return ""
}

// isHexID reports whether s is exactly n hex digits.
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// requestLog logs one structured record per request: method, path, status,
// duration, and the trace id planted by requestID (so log lines join against
// exported spans and the X-Request-Id a client saw).
func requestLog(logger *slog.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur", time.Since(start).Round(time.Microsecond),
				"trace_id", obs.SpanFrom(r.Context()).TraceID(),
			)
		})
	}
}

// recovery converts handler panics into 500s instead of killing the
// connection, logging the stack when a logger is configured.
func recovery(logger *slog.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Error("panic",
							"method", r.Method,
							"path", r.URL.Path,
							"value", rec,
							"stack", string(debug.Stack()),
						)
					}
					// Headers may already be out on a streaming response;
					// WriteHeader is then a no-op warning, which is fine.
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// limiter is the admission-control state: one llm.TokenBucket per client
// key (remote host), refilled at rps with the given burst capacity.
// Admission is non-blocking — a request without a token is rejected, not
// queued — because shedding load at the edge is the point.
type limiter struct {
	mu      sync.Mutex
	rps     float64
	burst   int
	buckets map[string]*llm.TokenBucket
	now     func() time.Time // swapped in tests; nil means time.Now
}

// maxBuckets is a hard bound on the per-client map: beyond it, fully
// refilled (hence inactive) buckets are pruned, and if nothing is idle an
// arbitrary bucket is evicted anyway — bounded memory in the load-shedding
// path beats perfect per-client fairness. An evicted client simply starts
// over with a full burst.
const maxBuckets = 4096

func newLimiter(rps float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rps: rps, burst: burst, buckets: map[string]*llm.TokenBucket{}}
}

// allow takes a token for key, reporting admission and — on rejection — how
// long until a token is available.
func (l *limiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked()
		}
		b = llm.NewTokenBucket(l.rps, l.burst)
		b.Clock = l.now
		l.buckets[key] = b
	}
	l.mu.Unlock()
	return b.TryTake()
}

// pruneLocked drops fully refilled buckets, then — if every client is
// mid-refill — evicts arbitrary entries until the map honors the bound.
func (l *limiter) pruneLocked() {
	for k, b := range l.buckets {
		if b.Full() {
			delete(l.buckets, k)
		}
	}
	for k := range l.buckets {
		if len(l.buckets) < maxBuckets {
			break
		}
		delete(l.buckets, k)
	}
}

// clientKey identifies the requester for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admission enforces a per-client request rate: over-limit requests get
// 429 with a Retry-After hint and count into the rate_limited metric.
// Liveness probes (/v1/healthz) are exempt so orchestrators can still see a
// saturated replica as alive. rps <= 0 disables the middleware.
func admission(rps float64, burst int, m *Metrics) middleware {
	if rps <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	l := newLimiter(rps, burst)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			ok, wait := l.allow(clientKey(r))
			if !ok {
				m.RateLimited.Add(1)
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests, "rate limit exceeded; retry after %ds", secs)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// spendLimiter is the token-budget admission state: per client, a
// completion-token balance refilled at tokensPerMin/60 per second up to one
// minute's budget. Spend is post-paid — an eval's completion tokens are
// only known as results stream back, so each line debits the balance
// (possibly driving it negative) and the *next* request is shed until the
// balance refills past zero. That bounds a client's sustained spend at the
// configured rate while letting any single admitted eval finish.
type spendLimiter struct {
	mu       sync.Mutex
	perSec   float64 // refill rate, tokens/second
	capacity float64 // burst capacity: one minute's budget
	balances map[string]*spendBalance
	now      func() time.Time // swapped in tests; nil means time.Now
}

type spendBalance struct {
	tokens float64
	last   time.Time
}

func newSpendLimiter(tokensPerMin float64) *spendLimiter {
	return &spendLimiter{
		perSec:   tokensPerMin / 60,
		capacity: tokensPerMin,
		balances: map[string]*spendBalance{},
	}
}

func (l *spendLimiter) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

// refillLocked brings a balance up to date.
func (l *spendLimiter) refillLocked(b *spendBalance, now time.Time) {
	b.tokens += now.Sub(b.last).Seconds() * l.perSec
	if b.tokens > l.capacity {
		b.tokens = l.capacity
	}
	b.last = now
}

// balance returns the client's refilled balance entry, pruning the map when
// it would exceed the bucket bound. Eviction prefers entries that owe
// nothing — fully refilled first, then merely positive — because an evicted
// client restarts with a full budget: dropping an indebted entry would
// forgive unbounded completion-token debt, exactly the spend the limiter
// exists to bound. Indebted entries go only as a last resort to keep the
// memory bound hard.
func (l *spendLimiter) balance(key string) *spendBalance {
	now := l.clock()
	b, ok := l.balances[key]
	if !ok {
		if len(l.balances) >= maxBuckets {
			for k, bal := range l.balances {
				l.refillLocked(bal, now)
				if bal.tokens >= l.capacity {
					delete(l.balances, k)
				}
			}
			for pass := 0; pass < 2 && len(l.balances) >= maxBuckets; pass++ {
				for k, bal := range l.balances {
					if len(l.balances) < maxBuckets {
						break
					}
					if pass == 0 && bal.tokens < 0 {
						continue // keep debtors as long as anything else can go
					}
					delete(l.balances, k)
				}
			}
		}
		b = &spendBalance{tokens: l.capacity, last: now}
		l.balances[key] = b
	}
	l.refillLocked(b, now)
	return b
}

// allow admits a request when the client's balance is positive, otherwise
// reporting how long until it refills past zero.
func (l *spendLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.balance(key)
	if b.tokens > 0 {
		return true, 0
	}
	wait := time.Duration(-b.tokens / l.perSec * float64(time.Second))
	return false, wait
}

// len reports the tracked-client count (tests).
func (l *spendLimiter) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.balances)
}

// debit charges completed tokens against the client's balance.
func (l *spendLimiter) debit(key string, tokens int) {
	if tokens <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.balance(key)
	b.tokens -= float64(tokens)
}

// spendDebitKey carries the per-request debit hook from the spend-admission
// middleware to the eval stream.
type spendDebitKey struct{}

// spendAdmission enforces the per-client completion-token budget on eval
// requests, layered on (inside) the request-rate bucket: over-budget
// clients get 429 + Retry-After and count into the token_limited metric.
// Non-eval endpoints spend no completion tokens and pass through untouched.
// tokensPerMin <= 0 disables the middleware.
func spendAdmission(l *spendLimiter, m *Metrics) middleware {
	if l == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasPrefix(r.URL.Path, "/v1/eval/") {
				next.ServeHTTP(w, r)
				return
			}
			key := clientKey(r)
			ok, wait := l.allow(key)
			if !ok {
				m.TokenLimited.Add(1)
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests, "completion-token budget exhausted; retry after %ds", secs)
				return
			}
			ctx := context.WithValue(r.Context(), spendDebitKey{}, func(tokens int) {
				l.debit(key, tokens)
			})
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// count maintains the request counters around each request.
func count(m *Metrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.Requests.Add(1)
			m.InFlight.Add(1)
			defer m.InFlight.Add(-1)
			switch {
			case strings.HasPrefix(r.URL.Path, "/v1/eval/"):
				m.EvalRequests.Add(1)
			case strings.HasPrefix(r.URL.Path, "/v1/experiments"):
				m.ExperimentRequests.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
}
