package serve

import (
	"log"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
)

// middleware wraps a handler.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so the first listed runs outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the response status for logging. It deliberately
// does not wrap Flush/Hijack generically: the eval handlers need Flusher,
// so it forwards that one interface explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON streaming works through
// the middleware stack.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog logs one line per request: method, path, status, duration.
func requestLog(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		})
	}
}

// recovery converts handler panics into 500s instead of killing the
// connection, logging the stack when a logger is configured.
func recovery(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
					}
					// Headers may already be out on a streaming response;
					// WriteHeader is then a no-op warning, which is fine.
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// limiter is the admission-control state: one llm.TokenBucket per client
// key (remote host), refilled at rps with the given burst capacity.
// Admission is non-blocking — a request without a token is rejected, not
// queued — because shedding load at the edge is the point.
type limiter struct {
	mu      sync.Mutex
	rps     float64
	burst   int
	buckets map[string]*llm.TokenBucket
	now     func() time.Time // swapped in tests; nil means time.Now
}

// maxBuckets is a hard bound on the per-client map: beyond it, fully
// refilled (hence inactive) buckets are pruned, and if nothing is idle an
// arbitrary bucket is evicted anyway — bounded memory in the load-shedding
// path beats perfect per-client fairness. An evicted client simply starts
// over with a full burst.
const maxBuckets = 4096

func newLimiter(rps float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rps: rps, burst: burst, buckets: map[string]*llm.TokenBucket{}}
}

// allow takes a token for key, reporting admission and — on rejection — how
// long until a token is available.
func (l *limiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked()
		}
		b = llm.NewTokenBucket(l.rps, l.burst)
		b.Clock = l.now
		l.buckets[key] = b
	}
	l.mu.Unlock()
	return b.TryTake()
}

// pruneLocked drops fully refilled buckets, then — if every client is
// mid-refill — evicts arbitrary entries until the map honors the bound.
func (l *limiter) pruneLocked() {
	for k, b := range l.buckets {
		if b.Full() {
			delete(l.buckets, k)
		}
	}
	for k := range l.buckets {
		if len(l.buckets) < maxBuckets {
			break
		}
		delete(l.buckets, k)
	}
}

// clientKey identifies the requester for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admission enforces a per-client request rate: over-limit requests get
// 429 with a Retry-After hint and count into the rate_limited metric.
// Liveness probes (/v1/healthz) are exempt so orchestrators can still see a
// saturated replica as alive. rps <= 0 disables the middleware.
func admission(rps float64, burst int, m *Metrics) middleware {
	if rps <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	l := newLimiter(rps, burst)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			ok, wait := l.allow(clientKey(r))
			if !ok {
				m.RateLimited.Add(1)
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests, "rate limit exceeded; retry after %ds", secs)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// count maintains the request counters around each request.
func count(m *Metrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.Requests.Add(1)
			m.InFlight.Add(1)
			defer m.InFlight.Add(-1)
			switch {
			case strings.HasPrefix(r.URL.Path, "/v1/eval/"):
				m.EvalRequests.Add(1)
			case strings.HasPrefix(r.URL.Path, "/v1/experiments"):
				m.ExperimentRequests.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
}
