package serve

import (
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// middleware wraps a handler.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so the first listed runs outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the response status for logging. It deliberately
// does not wrap Flush/Hijack generically: the eval handlers need Flusher,
// so it forwards that one interface explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON streaming works through
// the middleware stack.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog logs one line per request: method, path, status, duration.
func requestLog(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		})
	}
}

// recovery converts handler panics into 500s instead of killing the
// connection, logging the stack when a logger is configured.
func recovery(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
					}
					// Headers may already be out on a streaming response;
					// WriteHeader is then a no-op warning, which is fine.
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// count maintains the request counters around each request.
func count(m *Metrics) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.Requests.Add(1)
			m.InFlight.Add(1)
			defer m.InFlight.Add(-1)
			switch {
			case strings.HasPrefix(r.URL.Path, "/v1/eval/"):
				m.EvalRequests.Add(1)
			case strings.HasPrefix(r.URL.Path, "/v1/experiments"):
				m.ExperimentRequests.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
}
