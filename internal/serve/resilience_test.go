package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
)

// faultyServer builds a service whose GPT4 is a sim model with a
// deterministic 15% fault plan — the serve-layer chaos fixture.
func faultyServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(Config{DefaultSeed: 1, Parallel: 4, Models: []llm.Spec{{
		Name: llm.GPT4, Provider: "sim",
		FaultRate: 0.15, FaultSeed: 7,
	}}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestEvalContinueOnError drives a whole cell against a faulty model with
// continue_on_error: the stream must complete with one line per example in
// order, failures inline as error rows, and the failed counters must move.
func TestEvalContinueOnError(t *testing.T) {
	srv, ts := faultyServer(t)
	lines := decodeNDJSON(t, postEval(t, ts.URL, "syntax", EvalRequest{
		Model:   llm.GPT4,
		Dataset: core.SDSS,
		Params:  &EvalParams{ContinueOnError: true},
	}))

	env, err := srv.env(envKey{seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cell := env.Bench.Syntax[core.SDSS]
	if len(lines) != len(cell) {
		t.Fatalf("streamed %d lines, cell has %d examples", len(lines), len(cell))
	}
	failed, graded := 0, 0
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d has index %d (order broken)", i, line.Index)
		}
		if line.ID != cell[i].ID {
			t.Fatalf("line %d: ID %q, want %q", i, line.ID, cell[i].ID)
		}
		if line.Failed {
			failed++
			if line.Error == "" {
				t.Fatalf("line %d: failed row with no error", i)
			}
			if line.SQL == "" {
				t.Fatalf("line %d: failed row lost its statement", i)
			}
			if line.PredHasError != nil || line.Correct != nil {
				t.Fatalf("line %d: failed row carries predictions: %+v", i, line)
			}
		} else {
			graded++
			if line.Error != "" {
				t.Fatalf("line %d: graded row carries an error: %q", i, line.Error)
			}
			if line.PredHasError == nil {
				t.Fatalf("line %d: graded row missing prediction", i)
			}
		}
	}
	if failed == 0 || graded == 0 {
		t.Fatalf("degenerate stream: %d failed, %d graded", failed, graded)
	}
	if got := srv.Metrics().FailedExamples.Load(); got != int64(failed) {
		t.Errorf("failed_examples = %d, want %d", got, failed)
	}
	if got := srv.Metrics().FailedByTask()["syntax"]; got != int64(failed) {
		t.Errorf("failed_by_task[syntax] = %d, want %d", got, failed)
	}
}

// TestEvalAbortsWithoutContinueOnError pins the default contract: the same
// faulty cell without continue_on_error must not stream a complete set of
// rows — the run aborts on the first failure (terminal error line, since
// rows may already be flowing).
func TestEvalAbortsWithoutContinueOnError(t *testing.T) {
	srv, ts := faultyServer(t)
	resp := postEval(t, ts.URL, "syntax", EvalRequest{Model: llm.GPT4, Dataset: core.SDSS})
	defer resp.Body.Close()
	env, err := srv.env(envKey{seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr string
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		n++
		var line struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lastErr = line.Error
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lastErr == "" {
		t.Fatal("aborted eval ended without an error line")
	}
	if n > len(env.Bench.Syntax[core.SDSS]) {
		t.Fatalf("aborted eval streamed %d lines", n)
	}
}

// TestEvalShedsWhenBreakerOpen pins the admission contract: an open
// circuit breaker on the target model sheds the eval with 503 +
// Retry-After before any completion runs.
func TestEvalShedsWhenBreakerOpen(t *testing.T) {
	srv, ts := faultyServer(t)
	ms := srv.ModelStats().Model(llm.GPT4)
	ms.BreakerState.Store(int32(llm.BreakerOpen))
	ms.BreakerOpenUntil.Store(time.Now().Add(30 * time.Second).UnixNano())
	defer func() {
		ms.BreakerState.Store(int32(llm.BreakerClosed))
		ms.BreakerOpenUntil.Store(0)
	}()

	resp := postEval(t, ts.URL, "syntax", EvalRequest{Model: llm.GPT4, Dataset: core.SDSS})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	if got := srv.Metrics().BreakerSheds.Load(); got == 0 {
		t.Error("breaker_sheds not counted")
	}

	// An expired open deadline must admit again (half-open probes need to
	// get through).
	ms.BreakerOpenUntil.Store(time.Now().Add(-time.Second).UnixNano())
	resp2 := postEval(t, ts.URL, "syntax", EvalRequest{
		Model: llm.GPT4, Dataset: core.SDSS,
		Params: &EvalParams{ContinueOnError: true},
	})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("expired breaker deadline still shed: status = %d", resp2.StatusCode)
	}
}
