package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
)

// EvalRequest is the body of POST /v1/eval/{task}. Exactly one source of
// examples applies, checked in this order:
//
//   - SQL (or Pairs, for pair-input tasks like equiv): ad-hoc statements
//     submitted by the caller. No ground-truth labels exist, so result
//     lines carry only the model's predictions.
//   - IDs: benchmark example IDs (e.g. "sdss-0017/syn") resolved against the
//     seed's benchmark. Result lines include the expected label and a
//     correctness verdict.
//   - neither: the whole model×dataset cell streams back, labeled.
//
// Sources are mutually exclusive, and a source the task does not take
// (Pairs on an sql-input task, SQL on a pair-input one) is rejected with
// 400 rather than silently ignored.
type EvalRequest struct {
	// Model is the registered model name (GPT4, GPT3.5, Llama3, MistralAI,
	// Gemini). Required.
	Model string `json:"model"`
	// Dataset selects the benchmark dataset for multi-dataset tasks (each
	// task's list and default are in GET /v1/tasks). Single-dataset tasks
	// (perf: SDSS, explain: Spider, as in the paper) are pinned.
	Dataset string `json:"dataset,omitempty"`
	// Seed selects the benchmark seed (0 = server default).
	Seed int64 `json:"seed,omitempty"`
	// IDs selects labeled benchmark examples by ID.
	IDs []string `json:"ids,omitempty"`
	// SQL holds ad-hoc statements (sql-input tasks).
	SQL []string `json:"sql,omitempty"`
	// Pairs holds ad-hoc [left, right] query pairs (pair-input tasks).
	Pairs [][2]string `json:"pairs,omitempty"`
	// Params optionally sets completion parameters for every request the
	// eval issues (temperature, max_tokens, model-side seed).
	Params *EvalParams `json:"params,omitempty"`
}

// EvalParams are the per-request completion parameters a caller may set;
// they apply to every completion of the eval batch.
type EvalParams struct {
	// Temperature is the sampling temperature (nil = provider default).
	Temperature *float64 `json:"temperature,omitempty"`
	// MaxTokens caps each completion's length (0 = no cap).
	MaxTokens int `json:"max_tokens,omitempty"`
	// Seed requests provider-side deterministic sampling (nil = unset).
	// This is the model-side sampling seed, unrelated to the benchmark
	// Seed above.
	Seed *int64 `json:"seed,omitempty"`
	// ContinueOnError switches the eval to partial-failure mode: an example
	// whose completion fails becomes an inline error line (failed=true) in
	// its stream position instead of aborting the whole response.
	ContinueOnError bool `json:"continue_on_error,omitempty"`
	// MaxFailures aborts a continuing eval once more than this many
	// examples have failed (0 = unlimited). Ignored without
	// ContinueOnError.
	MaxFailures int `json:"max_failures,omitempty"`
}

// TaskInfo is one entry of GET /v1/tasks: a registered task's identity,
// paper skill tags, dataset topology, and the request parameters its eval
// endpoint accepts.
type TaskInfo struct {
	ID             string         `json:"id"`
	Name           string         `json:"name"`
	Description    string         `json:"description"`
	Skills         map[string]int `json:"skills"`
	Datasets       []string       `json:"datasets"`
	DefaultDataset string         `json:"default_dataset"`
	// Input names the ad-hoc example source the task takes: "sql" for
	// single statements, "pairs" for [left, right] statement pairs.
	Input  string   `json:"input"`
	Params []string `json:"params"`
}

// encodeLine renders one NDJSON eval line from a task-agnostic result view.
// Field order is fixed — index, id, task, sql[, sql2], the task's
// pred_*/want_* fields in task order, correct, response, usage, latency_ms —
// matching the shape the per-task handlers used to emit.
func encodeLine(index int, task string, v core.ResultView) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	w := func(key string, value any) error {
		enc, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("encoding field %s: %w", key, err)
		}
		if buf.Len() > 1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('"')
		buf.WriteString(key)
		buf.WriteString(`":`)
		buf.Write(enc)
		return nil
	}
	if err := w("index", index); err != nil {
		return nil, err
	}
	w("id", v.ID)
	w("task", task)
	w("sql", v.SQL)
	if v.SQL2 != "" {
		w("sql2", v.SQL2)
	}
	// A failed example renders as an error row in its stream position:
	// identity fields plus the failure, no predictions.
	if v.Err != "" {
		w("failed", true)
		if err := w("error", v.Err); err != nil {
			return nil, err
		}
		buf.WriteString("}\n")
		return buf.Bytes(), nil
	}
	for _, f := range v.Fields {
		if err := w(f.Key, f.Value); err != nil {
			return nil, err
		}
	}
	if v.Correct != nil {
		w("correct", *v.Correct)
	}
	if v.Response != "" {
		w("response", v.Response)
	}
	if v.Usage != (llm.Usage{}) {
		w("usage", UsageInfo{PromptTokens: v.Usage.PromptTokens, CompletionTokens: v.Usage.CompletionTokens})
	}
	if v.Latency != 0 {
		w("latency_ms", float64(v.Latency)/float64(time.Millisecond))
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

// EvalLine is the union of every line shape the generic encoder emits for
// the built-in tasks — the decode-side companion of encodeLine for tests
// and clients. Prediction fields are task-specific; Want* fields appear
// only for labeled benchmark examples.
type EvalLine struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Task  string `json:"task"`
	SQL   string `json:"sql"`
	SQL2  string `json:"sql2,omitempty"` // equiv: right-hand query

	// syntax task
	PredHasError  *bool  `json:"pred_has_error,omitempty"`
	PredErrorType string `json:"pred_error_type,omitempty"`
	WantHasError  *bool  `json:"want_has_error,omitempty"`
	WantErrorType string `json:"want_error_type,omitempty"`

	// tokens task
	PredMissing  *bool  `json:"pred_missing,omitempty"`
	PredKind     string `json:"pred_kind,omitempty"`
	PredPosition *int   `json:"pred_position,omitempty"`
	WantMissing  *bool  `json:"want_missing,omitempty"`
	WantKind     string `json:"want_kind,omitempty"`
	WantPosition *int   `json:"want_position,omitempty"`

	// equiv task
	PredEquivalent *bool  `json:"pred_equivalent,omitempty"`
	PredEquivType  string `json:"pred_equiv_type,omitempty"`
	WantEquivalent *bool  `json:"want_equivalent,omitempty"`
	WantEquivType  string `json:"want_equiv_type,omitempty"`

	// perf task
	PredCostly *bool `json:"pred_costly,omitempty"`
	WantCostly *bool `json:"want_costly,omitempty"`

	// fill task
	PredToken string `json:"pred_token,omitempty"`
	WantToken string `json:"want_token,omitempty"`

	// explain task
	Explanation string   `json:"explanation,omitempty"`
	Coverage    *float64 `json:"coverage,omitempty"`

	// Correct compares the primary binary prediction against the label on
	// labeled examples.
	Correct *bool `json:"correct,omitempty"`

	// Response is the raw model response (omitted for explain, whose
	// response is the explanation itself).
	Response string `json:"response,omitempty"`

	// Usage is the completion's token accounting; LatencyMS its wall time
	// (deterministic simulated values under the sim backends).
	Usage     *UsageInfo `json:"usage,omitempty"`
	LatencyMS float64    `json:"latency_ms,omitempty"`

	// Failed marks an inline error row of a continue-on-error eval; Error
	// carries the completion failure. Prediction fields are absent on such
	// rows.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// UsageInfo is one completion's token accounting on an EvalLine.
type UsageInfo struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
}

// ErrorLine terminates an NDJSON stream that failed after results started
// flowing (the status code is already committed by then).
type ErrorLine struct {
	Error string `json:"error"`
}

// ExperimentInfo is one entry of GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// TraceSnapshot is the GET /v1/trace payload: the span ring's current
// contents (oldest first) and how many older spans were evicted to stay
// within the configured bound.
type TraceSnapshot struct {
	Spans   []obs.SpanRecord `json:"spans"`
	Evicted uint64           `json:"evicted"`
}
