package serve

// EvalRequest is the body of POST /v1/eval/{task}. Exactly one source of
// examples applies, checked in this order:
//
//   - SQL (or Pairs, for the equiv task): ad-hoc statements submitted by the
//     caller. No ground-truth labels exist, so result lines carry only the
//     model's predictions.
//   - IDs: benchmark example IDs (e.g. "sdss-0017/syn") resolved against the
//     seed's benchmark. Result lines include the expected label and a
//     correctness verdict.
//   - neither: the whole model×dataset cell streams back, labeled.
//
// Sources are mutually exclusive, and a source the task does not take
// (Pairs outside equiv, SQL on equiv) is rejected with 400 rather than
// silently ignored.
type EvalRequest struct {
	// Model is the registered model name (GPT4, GPT3.5, Llama3, MistralAI,
	// Gemini). Required.
	Model string `json:"model"`
	// Dataset selects the benchmark dataset for the syntax, tokens, and
	// equiv tasks (SDSS, SQLShare, Join-Order; default SDSS). The perf task
	// is SDSS-only and the explain task Spider-only, as in the paper.
	Dataset string `json:"dataset,omitempty"`
	// Seed selects the benchmark seed (0 = server default).
	Seed int64 `json:"seed,omitempty"`
	// IDs selects labeled benchmark examples by ID.
	IDs []string `json:"ids,omitempty"`
	// SQL holds ad-hoc statements (all tasks except equiv).
	SQL []string `json:"sql,omitempty"`
	// Pairs holds ad-hoc [left, right] query pairs (equiv task only).
	Pairs [][2]string `json:"pairs,omitempty"`
	// Params optionally sets completion parameters for every request the
	// eval issues (temperature, max_tokens, model-side seed).
	Params *EvalParams `json:"params,omitempty"`
}

// EvalParams are the per-request completion parameters a caller may set;
// they apply to every completion of the eval batch.
type EvalParams struct {
	// Temperature is the sampling temperature (nil = provider default).
	Temperature *float64 `json:"temperature,omitempty"`
	// MaxTokens caps each completion's length (0 = no cap).
	MaxTokens int `json:"max_tokens,omitempty"`
	// Seed requests provider-side deterministic sampling (nil = unset).
	// This is the model-side sampling seed, unrelated to the benchmark
	// Seed above.
	Seed *int64 `json:"seed,omitempty"`
}

// EvalLine is one NDJSON line of an eval response: one example's outcome,
// written as soon as every earlier example has completed. Prediction fields
// are task-specific; Want* fields appear only for labeled benchmark
// examples.
type EvalLine struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Task  string `json:"task"`
	SQL   string `json:"sql"`
	SQL2  string `json:"sql2,omitempty"` // equiv: right-hand query

	// syntax task
	PredHasError  *bool  `json:"pred_has_error,omitempty"`
	PredErrorType string `json:"pred_error_type,omitempty"`
	WantHasError  *bool  `json:"want_has_error,omitempty"`
	WantErrorType string `json:"want_error_type,omitempty"`

	// tokens task
	PredMissing  *bool  `json:"pred_missing,omitempty"`
	PredKind     string `json:"pred_kind,omitempty"`
	PredPosition *int   `json:"pred_position,omitempty"`
	WantMissing  *bool  `json:"want_missing,omitempty"`
	WantKind     string `json:"want_kind,omitempty"`
	WantPosition *int   `json:"want_position,omitempty"`

	// equiv task
	PredEquivalent *bool  `json:"pred_equivalent,omitempty"`
	PredEquivType  string `json:"pred_equiv_type,omitempty"`
	WantEquivalent *bool  `json:"want_equivalent,omitempty"`
	WantEquivType  string `json:"want_equiv_type,omitempty"`

	// perf task
	PredCostly *bool `json:"pred_costly,omitempty"`
	WantCostly *bool `json:"want_costly,omitempty"`

	// explain task
	Explanation string   `json:"explanation,omitempty"`
	Coverage    *float64 `json:"coverage,omitempty"`

	// Correct compares the primary binary prediction against the label on
	// labeled examples.
	Correct *bool `json:"correct,omitempty"`

	// Response is the raw model response (omitted for explain, whose
	// response is the explanation itself).
	Response string `json:"response,omitempty"`

	// Usage is the completion's token accounting; LatencyMS its wall time
	// (deterministic simulated values under the sim backends).
	Usage     *UsageInfo `json:"usage,omitempty"`
	LatencyMS float64    `json:"latency_ms,omitempty"`
}

// UsageInfo is one completion's token accounting on an EvalLine.
type UsageInfo struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
}

// ErrorLine terminates an NDJSON stream that failed after results started
// flowing (the status code is already committed by then).
type ErrorLine struct {
	Error string `json:"error"`
}

// ExperimentInfo is one entry of GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// boolp, intp, and floatp build the optional-field pointers EvalLine uses.
func boolp(b bool) *bool        { return &b }
func intp(i int) *int           { return &i }
func floatp(f float64) *float64 { return &f }
