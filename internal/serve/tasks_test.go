package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// The discovery endpoint mirrors the core task registry: ids in
// registration order, with skills, datasets, and input shapes.
func TestTaskDiscovery(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/tasks")
	if err != nil {
		t.Fatalf("GET tasks: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var infos []TaskInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := core.TaskIDs()
	if len(infos) != len(want) {
		t.Fatalf("listed %d tasks, want %d", len(infos), len(want))
	}
	byID := map[string]TaskInfo{}
	for i, info := range infos {
		if info.ID != want[i] {
			t.Errorf("task %d = %q, want %q", i, info.ID, want[i])
		}
		if info.Name == "" || info.Description == "" || len(info.Skills) == 0 || len(info.Datasets) == 0 {
			t.Errorf("incomplete listing: %+v", info)
		}
		byID[info.ID] = info
	}
	if byID["equiv"].Input != "pairs" || byID["syntax"].Input != "sql" {
		t.Errorf("input shapes wrong: %+v", byID)
	}
	// The sixth task is discoverable without any serve changes.
	fill, ok := byID["fill"]
	if !ok {
		t.Fatal("fill task not listed")
	}
	if fill.Name != "fill_token" || fill.DefaultDataset != core.SDSS {
		t.Errorf("fill listing = %+v", fill)
	}
}

// Unknown eval tasks 404 with the registered ids in the error, straight
// from the registry.
func TestEvalUnknownTaskListsRegistry(t *testing.T) {
	_, url := testServerAndURL(t)
	resp := postEval(t, url, "nosuch", EvalRequest{Model: "GPT4"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var e ErrorLine
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, id := range core.TaskIDs() {
		if !strings.Contains(e.Error, id) {
			t.Errorf("404 body %q does not list task %q", e.Error, id)
		}
	}
}

// The sixth task evaluates end to end through the generic handler: labeled
// cell lines carry the fill-specific fields and a correctness verdict.
func TestEvalFillTask(t *testing.T) {
	srv, url := testServerAndURL(t)
	env, err := srv.env(envKey{seed: 1})
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	task, _ := core.TaskByID("fill")
	cell, _ := task.Cell(env.Bench, core.SDSS)
	var ids []string
	for _, ex := range cell {
		if fe := ex.Value().(core.FillExample); fe.Missing {
			ids = append(ids, ex.ID)
		}
		if len(ids) == 3 {
			break
		}
	}
	lines := decodeNDJSON(t, postEval(t, url, "fill", EvalRequest{
		Model: "GPT4", Dataset: core.SDSS, IDs: ids,
	}))
	if len(lines) != len(ids) {
		t.Fatalf("got %d lines, want %d", len(lines), len(ids))
	}
	for i, line := range lines {
		if line.ID != ids[i] {
			t.Errorf("line %d ID = %q, want %q", i, line.ID, ids[i])
		}
		if line.Task != "fill" {
			t.Errorf("line %d task = %q", i, line.Task)
		}
		if line.PredMissing == nil || line.WantMissing == nil || line.Correct == nil {
			t.Errorf("line %d missing labeled fields: %+v", i, line)
		}
		if line.WantToken == "" {
			t.Errorf("line %d has no want_token for a damaged example", i)
		}
	}

	// Ad-hoc fill input gets predictions only.
	adhoc := decodeNDJSON(t, postEval(t, url, "fill", EvalRequest{
		Model: "GPT4", SQL: []string{"SELECT plate SpecObj WHERE z > 0.5"},
	}))
	if len(adhoc) != 1 || adhoc[0].PredMissing == nil {
		t.Fatalf("ad-hoc fill lines = %+v", adhoc)
	}
	if adhoc[0].WantMissing != nil || adhoc[0].Correct != nil {
		t.Errorf("ad-hoc fill line carries ground truth: %+v", adhoc[0])
	}
}

// spendLimiter math: budget admits until the balance is spent, refills over
// time, and isolates clients.
func TestSpendLimiterMath(t *testing.T) {
	l := newSpendLimiter(600) // 10 tokens/sec, capacity 600
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.allow("a"); !ok {
		t.Fatal("fresh client rejected")
	}
	// Overspend past the full budget: post-paid debit drives it negative.
	l.debit("a", 700)
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("overspent client admitted")
	}
	// 100 tokens in debt at 10/s: ~10s until positive.
	if wait < 9*time.Second || wait > 11*time.Second {
		t.Errorf("wait = %v, want ~10s", wait)
	}
	// Other clients are unaffected.
	if ok, _ := l.allow("b"); !ok {
		t.Error("independent client rejected")
	}
	// Refill restores admission.
	now = now.Add(15 * time.Second)
	if ok, _ := l.allow("a"); !ok {
		t.Error("refilled client still rejected")
	}
}

// Overflow eviction must not forgive debt: when the balance map hits its
// bound, indebted clients survive while paid-up ones are evicted.
func TestSpendLimiterEvictionKeepsDebtors(t *testing.T) {
	l := newSpendLimiter(0.001) // negligible refill: nothing returns to full
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	l.allow("debtor")
	l.debit("debtor", 1_000_000)
	for i := 0; l.len() < maxBuckets; i++ {
		key := "client-" + strconv.Itoa(i)
		l.allow(key)
		l.debit(key, 0) // touched but owes nothing beyond its tiny capacity
	}
	// New clients force evictions; the deep debtor must not be the victim.
	for i := 0; i < 50; i++ {
		l.allow("newcomer-" + strconv.Itoa(i))
	}
	if got := l.len(); got > maxBuckets {
		t.Errorf("balances = %d, want <= %d", got, maxBuckets)
	}
	if ok, _ := l.allow("debtor"); ok {
		t.Error("debtor was evicted and readmitted with a fresh budget")
	}
}

// The spend middleware sheds over-budget eval requests with 429 +
// Retry-After, counts them as token_limited, and leaves non-eval endpoints
// alone.
func TestSpendAdmission(t *testing.T) {
	s := NewServer(Config{DefaultSeed: 1, Parallel: 4, TokensPerMin: 30})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The first eval is admitted (full one-minute budget) and its streamed
	// completion tokens are debited; a short batch overdraws the 30-token
	// budget immediately.
	lines := decodeNDJSON(t, postEval(t, ts.URL, "syntax", EvalRequest{
		Model: "GPT4",
		SQL: []string{
			"SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
			"SELECT plate mjd FROM SpecObj",
			"SELECT plate FROM SpecObj WHERE z > 1.5",
		},
	}))
	if len(lines) != 3 {
		t.Fatalf("admitted eval streamed %d lines", len(lines))
	}
	var spent int
	for _, l := range lines {
		if l.Usage != nil {
			spent += l.Usage.CompletionTokens
		}
	}
	if spent <= 30 {
		t.Fatalf("test eval spent only %d tokens; raise the batch size", spent)
	}

	resp := postEval(t, ts.URL, "syntax", EvalRequest{Model: "GPT4", SQL: []string{"SELECT 1"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget eval status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 lacks Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q", ra)
	}
	if got := s.Metrics().TokenLimited.Load(); got < 1 {
		t.Errorf("token_limited = %d, want >= 1", got)
	}

	// Non-eval endpoints spend no tokens and stay open.
	for _, path := range []string{"/v1/healthz", "/v1/tasks", "/v1/experiments"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d under token limiting", path, r.StatusCode)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.counters["token_limited"] < 1 {
		t.Errorf("metrics token_limited = %d", m.counters["token_limited"])
	}
}

// With no budget configured the spend middleware is inert.
func TestSpendAdmissionDisabled(t *testing.T) {
	_, url := testServerAndURL(t)
	for i := 0; i < 5; i++ {
		lines := decodeNDJSON(t, postEval(t, url, "perf", EvalRequest{
			Model: "GPT4", SQL: []string{"SELECT TOP 10 objid FROM PhotoObj"},
		}))
		if len(lines) != 1 {
			t.Fatalf("request %d: %d lines", i, len(lines))
		}
	}
}
