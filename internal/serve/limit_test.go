package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestLimiterBucketMath(t *testing.T) {
	l := newLimiter(10, 2)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("over-burst request admitted")
	}
	if wait <= 0 || wait > 200*time.Millisecond {
		t.Errorf("wait = %v, want ~100ms", wait)
	}
	// Clients are isolated: a different key has its own bucket.
	if ok, _ := l.allow("b"); !ok {
		t.Error("fresh client rejected")
	}
	// Refill restores admission.
	now = now.Add(time.Second)
	if ok, _ := l.allow("a"); !ok {
		t.Error("post-refill request rejected")
	}
}

func TestLimiterPrune(t *testing.T) {
	l := newLimiter(1000, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxBuckets; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("buckets = %d", len(l.buckets))
	}
	// After everyone refills, a new client triggers pruning instead of
	// unbounded growth.
	now = now.Add(time.Minute)
	l.allow("newcomer")
	if len(l.buckets) >= maxBuckets {
		t.Errorf("buckets = %d after prune, want far fewer", len(l.buckets))
	}
}

// The bound holds even when no bucket is idle: mid-refill entries are
// evicted rather than letting the map grow without limit.
func TestLimiterBoundedWhenNothingIdle(t *testing.T) {
	l := newLimiter(0.001, 1) // refill takes ~17min: nothing goes Full
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxBuckets+100; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	if len(l.buckets) > maxBuckets {
		t.Errorf("buckets = %d, want <= %d", len(l.buckets), maxBuckets)
	}
}

// The admission middleware sheds over-limit requests with 429 + Retry-After,
// counts them, and leaves the liveness endpoint alone.
func TestAdmissionControl(t *testing.T) {
	s := NewServer(Config{DefaultSeed: 1, Parallel: 4, RPS: 1, Burst: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}
	// Burst admits the first two, then the limiter sheds.
	codes := []int{}
	for i := 0; i < 4; i++ {
		codes = append(codes, get("/v1/experiments").StatusCode)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	var limited *http.Response
	for i := 0; i < 4; i++ {
		if resp := get("/v1/experiments"); resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
	}
	if limited == nil {
		t.Fatal("no request was rate limited")
	}
	if ra := limited.Header.Get("Retry-After"); ra == "" {
		t.Error("429 lacks Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q", ra)
	}
	if got := s.Metrics().RateLimited.Load(); got < 1 {
		t.Errorf("rate_limited = %d, want >= 1", got)
	}
	// Liveness is exempt no matter how saturated the client is.
	for i := 0; i < 10; i++ {
		if resp := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz rejected: %d", resp.StatusCode)
		}
	}
	// The metrics payload reports the shed count (after waiting out the
	// limiter so the metrics request itself is admitted).
	time.Sleep(1100 * time.Millisecond)
	m := getMetrics(t, ts.URL)
	if m.counters["rate_limited"] < 1 {
		t.Errorf("metrics rate_limited = %d", m.counters["rate_limited"])
	}
}

// With RPS unset the middleware is inert.
func TestAdmissionDisabled(t *testing.T) {
	_, url := testServerAndURL(t)
	for i := 0; i < 20; i++ {
		resp, err := http.Get(url + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}
