package serve

import (
	"encoding/json"
	"expvar"
	"sync"
	"sync/atomic"
)

// Metrics holds the service's operational counters. All fields are atomics;
// a Metrics value is safe for concurrent use. Snapshot() is what both the
// /v1/metrics endpoint and the expvar bridge serialize.
type Metrics struct {
	// Requests counts every HTTP request received, including errors.
	Requests atomic.Int64
	// EvalRequests counts POST /v1/eval/* requests.
	EvalRequests atomic.Int64
	// ExperimentRequests counts GET /v1/experiments/* requests.
	ExperimentRequests atomic.Int64
	// ResultsStreamed counts NDJSON result lines written across all eval
	// responses.
	ResultsStreamed atomic.Int64
	// CoalesceHits counts requests served by joining an in-flight or
	// completed Flight computation (environment builds and artifact
	// renders) instead of computing themselves.
	CoalesceHits atomic.Int64
	// InFlight is the number of requests currently being served.
	InFlight atomic.Int64
	// EnvCacheSize and ArtifactCacheSize mirror the Flight cache sizes as
	// of the last environment build or artifact render.
	EnvCacheSize      atomic.Int64
	ArtifactCacheSize atomic.Int64
	// CacheEvictions counts entries the env and artifact caches have
	// dropped to honor their LRU caps.
	CacheEvictions atomic.Int64
	// RateLimited counts requests rejected with 429 by the admission-control
	// middleware.
	RateLimited atomic.Int64
	// TokenLimited counts eval requests rejected with 429 by the spend-based
	// (completion-token budget) admission middleware.
	TokenLimited atomic.Int64
	// FailedExamples counts inline error rows streamed by continue-on-error
	// evals, across all tasks; per-task counts live in failedByTask.
	FailedExamples atomic.Int64
	// BreakerSheds counts eval requests rejected with 503 + Retry-After
	// because the target model's circuit breaker was open.
	BreakerSheds atomic.Int64

	// failedByTask breaks FailedExamples down by task id.
	failedByTask sync.Map // string → *atomic.Int64
}

// FailedExample records one streamed error row against the totals and the
// per-task breakdown.
func (m *Metrics) FailedExample(task string) {
	m.FailedExamples.Add(1)
	c, ok := m.failedByTask.Load(task)
	if !ok {
		c, _ = m.failedByTask.LoadOrStore(task, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// FailedByTask returns the per-task failed-example counts.
func (m *Metrics) FailedByTask() map[string]int64 {
	out := make(map[string]int64)
	m.failedByTask.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Snapshot returns a point-in-time view suitable for JSON encoding.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"requests_total":      m.Requests.Load(),
		"eval_requests":       m.EvalRequests.Load(),
		"experiment_requests": m.ExperimentRequests.Load(),
		"results_streamed":    m.ResultsStreamed.Load(),
		"coalesce_hits":       m.CoalesceHits.Load(),
		"in_flight":           m.InFlight.Load(),
		"env_cache_size":      m.EnvCacheSize.Load(),
		"artifact_cache_size": m.ArtifactCacheSize.Load(),
		"cache_evictions":     m.CacheEvictions.Load(),
		"rate_limited":        m.RateLimited.Load(),
		"token_limited":       m.TokenLimited.Load(),
		"failed_examples":     m.FailedExamples.Load(),
		"breaker_sheds":       m.BreakerSheds.Load(),
	}
}

// Publish registers the metrics under the given expvar name so they appear
// on /debug/vars alongside the runtime's memstats. Calling Publish twice
// with the same name panics (expvar semantics), so the binary does it once.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// MarshalJSON lets a Metrics pointer be encoded directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}
