package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/llm"
)

// newTestServer shares one service (and hence one built environment) across
// the tests in this file; building the benchmark is the expensive part.
var (
	testSrvOnce sync.Once
	testSrv     *httptest.Server
	testServer  *Server
)

func testServerAndURL(t *testing.T) (*Server, string) {
	t.Helper()
	testSrvOnce.Do(func() {
		testServer = NewServer(Config{DefaultSeed: 1, Parallel: 4})
		testSrv = httptest.NewServer(testServer.Handler())
	})
	return testServer, testSrv.URL
}

func TestHealthz(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

// decodeNDJSON reads every line of an eval response.
func decodeNDJSON(t *testing.T, resp *http.Response) []EvalLine {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := json.Marshal(resp.Header)
		t.Fatalf("status = %d (headers %s)", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var lines []EvalLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line EvalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning: %v", err)
	}
	return lines
}

func postEval(t *testing.T, url, task string, req EvalRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/eval/"+task, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST eval/%s: %v", task, err)
	}
	return resp
}

// A whole-cell syntax eval must stream one labeled line per benchmark
// example, in dataset order.
func TestEvalSyntaxCellStreamsInOrder(t *testing.T) {
	srv, url := testServerAndURL(t)
	lines := decodeNDJSON(t, postEval(t, url, "syntax", EvalRequest{Model: "GPT4", Dataset: core.SDSS}))
	env, err := srv.env(envKey{seed: 1})
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	ds := env.Bench.Syntax[core.SDSS]
	if len(lines) != len(ds) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(ds))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d has index %d", i, line.Index)
		}
		if line.ID != ds[i].ID {
			t.Fatalf("line %d: ID %q, want %q (order broken)", i, line.ID, ds[i].ID)
		}
		if line.PredHasError == nil || line.WantHasError == nil || line.Correct == nil {
			t.Fatalf("line %d missing labeled fields: %+v", i, line)
		}
		if *line.WantHasError != ds[i].HasError {
			t.Fatalf("line %d: want_has_error mismatch", i)
		}
	}
}

// Ad-hoc submitted SQL gets predictions but no ground-truth fields.
func TestEvalAdHocSQL(t *testing.T) {
	_, url := testServerAndURL(t)
	lines := decodeNDJSON(t, postEval(t, url, "syntax", EvalRequest{
		Model: "GPT4",
		SQL: []string{
			"SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
			"SELECT plate mjd FROM SpecObj",
		},
	}))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		if line.ID != fmt.Sprintf("adhoc/%d", i) {
			t.Fatalf("line %d ID = %q", i, line.ID)
		}
		if line.PredHasError == nil {
			t.Fatalf("line %d has no prediction", i)
		}
		if line.WantHasError != nil || line.Correct != nil {
			t.Fatalf("ad-hoc line %d carries ground truth: %+v", i, line)
		}
	}
}

// Selecting benchmark examples by ID returns exactly those, in request order.
func TestEvalByID(t *testing.T) {
	srv, url := testServerAndURL(t)
	env, err := srv.env(envKey{seed: 1})
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	ds := env.Bench.Tokens[core.SQLShare]
	ids := []string{ds[3].ID, ds[0].ID, ds[7].ID}
	lines := decodeNDJSON(t, postEval(t, url, "tokens", EvalRequest{
		Model: "Llama3", Dataset: core.SQLShare, IDs: ids,
	}))
	if len(lines) != len(ids) {
		t.Fatalf("got %d lines, want %d", len(lines), len(ids))
	}
	for i, line := range lines {
		if line.ID != ids[i] {
			t.Fatalf("line %d: ID %q, want %q", i, line.ID, ids[i])
		}
		if line.WantMissing == nil || line.PredMissing == nil {
			t.Fatalf("line %d missing fields: %+v", i, line)
		}
	}
}

// The equiv task takes ad-hoc pairs.
func TestEvalEquivPairs(t *testing.T) {
	_, url := testServerAndURL(t)
	lines := decodeNDJSON(t, postEval(t, url, "equiv", EvalRequest{
		Model: "GPT4",
		Pairs: [][2]string{
			{"SELECT plate FROM SpecObj WHERE z > 1", "SELECT plate FROM SpecObj WHERE 1 < z"},
		},
	}))
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	if lines[0].PredEquivalent == nil || lines[0].SQL2 == "" {
		t.Fatalf("bad pair line: %+v", lines[0])
	}
}

// Bad requests fail fast with JSON errors, before any streaming starts.
func TestEvalValidation(t *testing.T) {
	_, url := testServerAndURL(t)
	cases := []struct {
		task   string
		req    EvalRequest
		status int
	}{
		{"syntax", EvalRequest{}, http.StatusBadRequest},                                                                         // no model
		{"syntax", EvalRequest{Model: "nope"}, http.StatusBadRequest},                                                            // unknown model
		{"syntax", EvalRequest{Model: "GPT4", Dataset: "nope"}, http.StatusBadRequest},                                           // unknown dataset
		{"syntax", EvalRequest{Model: "GPT4", IDs: []string{"x"}}, http.StatusBadRequest},                                        // unknown ID
		{"nosuch", EvalRequest{Model: "GPT4"}, http.StatusNotFound},                                                              // unknown task
		{"syntax", EvalRequest{Model: "GPT4", Seed: -1}, http.StatusBadRequest},                                                  // bad seed
		{"equiv", EvalRequest{Model: "GPT4", SQL: []string{"SELECT 1"}}, http.StatusBadRequest},                                  // sql on equiv
		{"syntax", EvalRequest{Model: "GPT4", Pairs: [][2]string{{"a", "b"}}}, http.StatusBadRequest},                            // pairs off equiv
		{"syntax", EvalRequest{Model: "GPT4", SQL: []string{"SELECT 1"}, IDs: []string{"sdss-0001/syn"}}, http.StatusBadRequest}, // both sources
	}
	for _, tc := range cases {
		resp := postEval(t, url, tc.task, tc.req)
		var e ErrorLine
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %+v: status %d, want %d (error %q)", tc.task, tc.req, resp.StatusCode, tc.status, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s %+v: no error body", tc.task, tc.req)
		}
	}
	// An explicit empty source must 400, not stream the whole cell (this
	// can't go through the table: omitempty drops the empty slice).
	resp, err := http.Post(url+"/v1/eval/syntax", "application/json",
		strings.NewReader(`{"model":"GPT4","sql":[]}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sql: status %d, want 400", resp.StatusCode)
	}
}

// Two simultaneous cold requests for the same artifact must trigger exactly
// one render: one caller computes, the other coalesces and the hit counter
// says so.
func TestExperimentColdStartCoalesces(t *testing.T) {
	// A dedicated server so counters start at zero and nothing is warm.
	s := NewServer(Config{DefaultSeed: 1, Parallel: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := s.Metrics().CoalesceHits.Load()
	const clients = 4
	outs := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/experiments/table2")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("client %d got different artifact bytes", i)
		}
	}
	if len(outs[0]) == 0 {
		t.Fatal("empty artifact")
	}
	// clients-1 of the artifact requests coalesced (plus possibly env-build
	// coalescing underneath, hence >=).
	hits := s.Metrics().CoalesceHits.Load() - before
	if hits < clients-1 {
		t.Fatalf("coalesce hits = %d, want >= %d", hits, clients-1)
	}
	// A warm re-request is also a (cache) hit and byte-identical.
	resp, err := http.Get(ts.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatalf("warm GET: %v", err)
	}
	var warm bytes.Buffer
	warm.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(outs[0], warm.Bytes()) {
		t.Fatal("warm artifact differs from cold")
	}
	if got := s.Metrics().CoalesceHits.Load(); got <= hits+before-1 {
		t.Fatalf("warm hit not counted: %d", got)
	}
}

// The artifact endpoint must serve exactly what the batch pipeline prints.
func TestExperimentMatchesPipeline(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/experiments/table1")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	got.ReadFrom(resp.Body)

	exp, ok := experiments.ByID("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	env, err := experiments.NewEnvConfig(experiments.Config{Seed: 1, Parallel: 4})
	if err != nil {
		t.Fatalf("env: %v", err)
	}
	var want bytes.Buffer
	if err := exp.Run(env, &want); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got.String() != want.String() {
		t.Fatalf("served artifact differs from pipeline output:\n--- served\n%s\n--- pipeline\n%s", got.String(), want.String())
	}
}

func TestExperimentNotFound(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/experiments/nope")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// metricsPayload decodes /v1/metrics: top-level counters plus the per-model
// usage section.
type metricsPayload struct {
	counters map[string]int64
	models   map[string]llm.ModelSnapshot
}

func getMetrics(t *testing.T, url string) metricsPayload {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	out := metricsPayload{counters: map[string]int64{}}
	for k, v := range raw {
		if k == "models" {
			if err := json.Unmarshal(v, &out.models); err != nil {
				t.Fatalf("decode models section: %v", err)
			}
			continue
		}
		var n int64
		if err := json.Unmarshal(v, &n); err != nil {
			t.Fatalf("counter %s is not numeric: %s", k, v)
		}
		out.counters[k] = n
	}
	return out
}

// Metrics must report request and streamed-result activity, plus per-model
// usage telemetry for the models the evals drove.
func TestMetricsEndpoint(t *testing.T) {
	srv, url := testServerAndURL(t)
	// Generate at least one eval line so counters are non-zero.
	decodeNDJSON(t, postEval(t, url, "perf", EvalRequest{
		Model: "Gemini",
		SQL:   []string{"SELECT TOP 10 * FROM PhotoObj"},
	}))
	m := getMetrics(t, url)
	for _, key := range []string{"requests_total", "eval_requests", "results_streamed", "env_cache_size"} {
		if m.counters[key] <= 0 {
			t.Errorf("metric %s = %d, want > 0 (all: %v)", key, m.counters[key], m.counters)
		}
	}
	gem, ok := m.models["Gemini"]
	if !ok {
		t.Fatalf("no per-model usage for Gemini: %v", m.models)
	}
	if gem.Requests < 1 || gem.PromptTokens <= 0 || gem.CompletionTokens <= 0 {
		t.Errorf("Gemini usage = %+v", gem)
	}
	if gem.TotalTokens != gem.PromptTokens+gem.CompletionTokens {
		t.Errorf("total tokens inconsistent: %+v", gem)
	}
	if gem.LatencyMeanMS <= 0 {
		t.Errorf("latency mean = %v", gem.LatencyMeanMS)
	}
	if srv.Metrics().Requests.Load() < 2 {
		t.Errorf("requests counter = %d", srv.Metrics().Requests.Load())
	}
}

// A capped artifact cache evicts the least recently used render and reports
// it through the metrics endpoint; re-requesting an evicted artifact still
// succeeds (it simply re-renders).
func TestArtifactCacheEviction(t *testing.T) {
	srv := NewServer(Config{DefaultSeed: 1, Parallel: 4, ArtifactCacheCap: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fetch := func(id string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/experiments/" + id)
		if err != nil {
			t.Fatalf("GET %s: %v", id, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", id, resp.StatusCode, buf.String())
		}
		return buf.String()
	}
	first := fetch("table2")
	fetch("fig1") // evicts table2 under cap 1
	m := getMetrics(t, ts.URL)
	if m.counters["cache_evictions"] < 1 {
		t.Errorf("cache_evictions = %d, want >= 1 (all: %v)", m.counters["cache_evictions"], m.counters)
	}
	if m.counters["artifact_cache_size"] != 1 {
		t.Errorf("artifact_cache_size = %d, want 1", m.counters["artifact_cache_size"])
	}
	// Evicted artifacts re-render identically.
	if again := fetch("table2"); again != first {
		t.Error("re-rendered artifact differs from the evicted one")
	}
}

// The experiment list endpoint mirrors the registry.
func TestExperimentList(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/experiments")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var infos []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(infos) != len(experiments.All()) {
		t.Fatalf("listed %d experiments, want %d", len(infos), len(experiments.All()))
	}
}

// Unknown-field requests are rejected so client typos don't silently
// evaluate the wrong thing.
func TestEvalRejectsUnknownFields(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Post(url+"/v1/eval/syntax", "application/json",
		strings.NewReader(`{"model":"GPT4","datset":"SDSS"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
