package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var hexID32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// Every response must carry a generated X-Request-Id (32 hex), and the
// access path must accept and echo a propagated one.
func TestRequestIDGenerated(t *testing.T) {
	_, url := testServerAndURL(t)
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if !hexID32.MatchString(id) {
		t.Fatalf("X-Request-Id = %q, want 32 hex digits", id)
	}
	// A second request gets a distinct id.
	resp2, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-Id"); id2 == id {
		t.Fatalf("two requests share X-Request-Id %q", id)
	}
}

func TestRequestIDPropagated(t *testing.T) {
	_, url := testServerAndURL(t)
	const want = "00112233445566778899aabbccddeeff"
	cases := []struct {
		header, value string
	}{
		{"traceparent", "00-" + want + "-00f067aa0ba902b7-01"},
		{"X-Request-Id", want},
		{"X-Request-Id", strings.ToUpper(want)}, // normalized to lowercase
	}
	for _, c := range cases {
		req, _ := http.NewRequest("GET", url+"/v1/healthz", nil)
		req.Header.Set(c.header, c.value)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET healthz: %v", err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got != want {
			t.Errorf("%s %q: X-Request-Id = %q, want %q", c.header, c.value, got, want)
		}
	}
	// Malformed propagation headers are ignored, not echoed.
	for _, bad := range []string{"not-hex", "00-zz-xx-01", "1234"} {
		req, _ := http.NewRequest("GET", url+"/v1/healthz", nil)
		req.Header.Set("X-Request-Id", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET healthz: %v", err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got == bad || !hexID32.MatchString(got) {
			t.Errorf("malformed id %q: X-Request-Id = %q, want fresh 32-hex id", bad, got)
		}
	}
}

// An eval request's whole span tree — http.request down to llm.request —
// must land in the /v1/trace ring under the propagated trace id.
func TestTraceEndpoint(t *testing.T) {
	_, url := testServerAndURL(t)
	const id = "feedfacefeedfacefeedfacefeedface"
	body := strings.NewReader(`{"model":"GPT4","sql":["SELECT objid FROM PhotoObj"]}`)
	req, _ := http.NewRequest("POST", url+"/v1/eval/syntax", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST eval: %v", err)
	}
	decodeNDJSON(t, resp)

	traceResp, err := http.Get(url + "/v1/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer traceResp.Body.Close()
	var snap TraceSnapshot
	if err := json.NewDecoder(traceResp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	names := map[string]int{}
	for _, s := range snap.Spans {
		if s.TraceID == id {
			names[s.Name]++
		}
	}
	// The default simulated clients carry no retry middleware, so the tree
	// bottoms out at llm.request; spec-built clients add llm.attempt spans
	// (covered in the llm package tests).
	for _, want := range []string{"http.request", "task.example", "prompt.render", "llm.request"} {
		if names[want] == 0 {
			t.Errorf("trace %s has no %q span (got %v)", id, want, names)
		}
	}
	// The root span records the request route and status.
	for _, s := range snap.Spans {
		if s.TraceID == id && s.Name == "http.request" {
			if s.Attrs["path"] != "/v1/eval/syntax" {
				t.Errorf("http.request path = %v", s.Attrs["path"])
			}
			if st, _ := s.Attrs["status"].(float64); int(st) != http.StatusOK {
				t.Errorf("http.request status = %v", s.Attrs["status"])
			}
			if s.ParentID != "" {
				t.Errorf("http.request should be a root span, parent %q", s.ParentID)
			}
		}
	}
}

// promLine matches one exposition sample: name, optional {labels}, value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)

// promSamples parses an exposition body line by line, failing the test on
// anything that is neither a comment nor a well-formed sample, and returns
// samples keyed by name{labels}.
func promSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

func TestPromExposition(t *testing.T) {
	_, url := testServerAndURL(t)
	// Drive one eval so model telemetry and latency samples exist.
	resp := postEval(t, url, "syntax", EvalRequest{Model: "GPT4", SQL: []string{"SELECT objid FROM PhotoObj"}})
	decodeNDJSON(t, resp)

	promResp, err := http.Get(url + "/v1/metrics/prom")
	if err != nil {
		t.Fatalf("GET metrics/prom: %v", err)
	}
	defer promResp.Body.Close()
	if ct := promResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatalf("read exposition: %v", err)
	}
	body := string(raw)
	samples := promSamples(t, body)

	// The JSON endpoint's counters all appear, prefixed.
	jsonResp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer jsonResp.Body.Close()
	var payload map[string]any
	if err := json.NewDecoder(jsonResp.Body).Decode(&payload); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	for _, m := range promServiceMetrics {
		got, ok := samples["sqlserved_"+m.key]
		if !ok {
			t.Errorf("exposition missing sqlserved_%s", m.key)
			continue
		}
		// Monotonic counters can only have grown between the two scrapes
		// (the JSON scrape itself increments requests_total); gauges that
		// track in-flight state are skipped from the comparison.
		if m.key == "in_flight" {
			continue
		}
		if want, ok := payload[m.key].(float64); ok && m.typ == "counter" && got > want {
			t.Errorf("%s: prom %v > later json %v", m.key, got, want)
		}
	}
	if samples["sqlserved_requests_total"] < 1 {
		t.Errorf("requests_total = %v, want >= 1", samples["sqlserved_requests_total"])
	}
	if samples[`sqlserved_model_requests{model="GPT4"}`] < 1 {
		t.Errorf("model requests sample missing or zero")
	}

	// Histogram invariants: bucket counts are cumulative (nondecreasing in
	// bound order) and the +Inf bucket equals _count.
	lines := strings.Split(body, "\n")
	var bounds []string
	var counts []float64
	for _, line := range lines {
		if !strings.HasPrefix(line, `sqlserved_model_latency_seconds_bucket{model="GPT4",le="`) {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed bucket line %q", line)
		}
		le := m[2][strings.Index(m[2], `le="`)+4:]
		bounds = append(bounds, le[:len(le)-2])
		v, _ := strconv.ParseFloat(m[3], 64)
		counts = append(counts, v)
	}
	if len(counts) == 0 {
		t.Fatal("no latency bucket samples for GPT4")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("bucket counts not cumulative at le=%s: %v < %v", bounds[i], counts[i], counts[i-1])
		}
	}
	if bounds[len(bounds)-1] != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", bounds[len(bounds)-1])
	}
	if inf, cnt := counts[len(counts)-1], samples[`sqlserved_model_latency_seconds_count{model="GPT4"}`]; inf != cnt {
		t.Errorf("+Inf bucket %v != _count %v", inf, cnt)
	}
}
