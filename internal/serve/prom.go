package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// promServiceMetrics maps the /v1/metrics JSON keys onto the Prometheus
// exposition: same counters, same values, text format. Order is fixed so the
// scrape output is deterministic (and trivially diffable in tests).
var promServiceMetrics = []struct {
	key  string // Metrics.Snapshot key
	typ  string // "counter" or "gauge"
	help string
}{
	{"requests_total", "counter", "HTTP requests received, including errors."},
	{"eval_requests", "counter", "POST /v1/eval/* requests received."},
	{"experiment_requests", "counter", "GET /v1/experiments/* requests received."},
	{"results_streamed", "counter", "NDJSON eval result lines written."},
	{"coalesce_hits", "counter", "Requests served by joining an in-flight or cached computation."},
	{"in_flight", "gauge", "Requests currently being served."},
	{"env_cache_size", "gauge", "Cached evaluation environments."},
	{"artifact_cache_size", "gauge", "Cached rendered artifacts."},
	{"cache_evictions", "counter", "Cache entries evicted to honor LRU caps."},
	{"rate_limited", "counter", "Requests rejected 429 by request-rate admission control."},
	{"token_limited", "counter", "Eval requests rejected 429 by the completion-token budget."},
	{"failed_examples", "counter", "Inline error rows streamed by continue-on-error evals."},
	{"breaker_sheds", "counter", "Eval requests rejected 503 while a model breaker was open."},
}

// promModelCounters are the per-model counters, one {model="..."} labeled
// sample per model with recorded stats.
var promModelCounters = []struct {
	name string
	help string
	load func(*modelCounterSnap) int64
}{
	{"requests", "Logical requests entering the model client.", func(m *modelCounterSnap) int64 { return m.requests }},
	{"errors", "Requests that failed after any retrying.", func(m *modelCounterSnap) int64 { return m.errors }},
	{"retries", "Retry attempts scheduled.", func(m *modelCounterSnap) int64 { return m.retries }},
	{"rate_limited", "Requests made to wait for a rate-limit token.", func(m *modelCounterSnap) int64 { return m.rateLimited }},
	{"prompt_tokens", "Prompt tokens consumed.", func(m *modelCounterSnap) int64 { return m.promptTokens }},
	{"completion_tokens", "Completion tokens consumed.", func(m *modelCounterSnap) int64 { return m.completionTokens }},
	{"breaker_opens", "Circuit-breaker transitions into the open state.", func(m *modelCounterSnap) int64 { return m.breakerOpens }},
	{"breaker_fast_fails", "Requests shed by an open or probing breaker.", func(m *modelCounterSnap) int64 { return m.breakerFastFails }},
	{"hedges_launched", "Hedged extra attempts raced.", func(m *modelCounterSnap) int64 { return m.hedgesLaunched }},
	{"hedges_won", "Requests answered by a hedge instead of the primary.", func(m *modelCounterSnap) int64 { return m.hedgesWon }},
}

type modelCounterSnap struct {
	requests, errors, retries, rateLimited int64
	promptTokens, completionTokens         int64
	breakerOpens, breakerFastFails         int64
	hedgesLaunched, hedgesWon              int64
}

// handleMetricsProm serves the counters of /v1/metrics in Prometheus text
// exposition format (version 0.0.4): service counters as sqlserved_*,
// per-task failure counts and per-model telemetry as labeled samples, and
// each model's latency histogram in cumulative-bucket form.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	s.syncCacheMetrics()
	var b bytes.Buffer

	snap := s.metrics.Snapshot()
	for _, m := range promServiceMetrics {
		name := "sqlserved_" + m.key
		promHeader(&b, name, m.typ, m.help)
		fmt.Fprintf(&b, "%s %d\n", name, snap[m.key])
	}

	if byTask := s.metrics.FailedByTask(); len(byTask) > 0 {
		tasks := make([]string, 0, len(byTask))
		for t := range byTask {
			tasks = append(tasks, t)
		}
		sort.Strings(tasks)
		promHeader(&b, "sqlserved_failed_examples_by_task", "counter",
			"Inline error rows streamed, by task.")
		for _, t := range tasks {
			fmt.Fprintf(&b, "sqlserved_failed_examples_by_task{task=%q} %d\n", t, byTask[t])
		}
	}

	names := s.llmStats.Names()
	if len(names) > 0 {
		counters := make(map[string]*modelCounterSnap, len(names))
		for _, name := range names {
			ms := s.llmStats.Model(name)
			counters[name] = &modelCounterSnap{
				requests:         ms.Requests.Load(),
				errors:           ms.Errors.Load(),
				retries:          ms.Retries.Load(),
				rateLimited:      ms.RateLimited.Load(),
				promptTokens:     ms.PromptTokens.Load(),
				completionTokens: ms.CompletionTokens.Load(),
				breakerOpens:     ms.BreakerOpens.Load(),
				breakerFastFails: ms.BreakerFastFails.Load(),
				hedgesLaunched:   ms.HedgesLaunched.Load(),
				hedgesWon:        ms.HedgesWon.Load(),
			}
		}
		for _, m := range promModelCounters {
			name := "sqlserved_model_" + m.name
			promHeader(&b, name, "counter", m.help)
			for _, model := range names {
				fmt.Fprintf(&b, "%s{model=%q} %d\n", name, model, m.load(counters[model]))
			}
		}
		promHeader(&b, "sqlserved_model_latency_seconds", "histogram",
			"Model request latency.")
		for _, model := range names {
			h := &s.llmStats.Model(model).Latency
			for _, bkt := range h.Cumulative() {
				fmt.Fprintf(&b, "sqlserved_model_latency_seconds_bucket{model=%q,le=%q} %d\n",
					model, promLE(bkt.UpperBound), bkt.Count)
			}
			fmt.Fprintf(&b, "sqlserved_model_latency_seconds_sum{model=%q} %s\n",
				model, promFloat(h.Sum().Seconds()))
			fmt.Fprintf(&b, "sqlserved_model_latency_seconds_count{model=%q} %d\n",
				model, h.Count())
		}
	}

	spans, evicted := s.tracer.Snapshot()
	promHeader(&b, "sqlserved_trace_spans", "gauge", "Completed spans retained in the trace ring.")
	fmt.Fprintf(&b, "sqlserved_trace_spans %d\n", len(spans))
	promHeader(&b, "sqlserved_trace_evicted_total", "counter", "Spans evicted from the trace ring.")
	fmt.Fprintf(&b, "sqlserved_trace_evicted_total %d\n", evicted)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// promHeader writes the # HELP / # TYPE preamble of one metric family.
func promHeader(b *bytes.Buffer, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promLE renders a histogram bucket bound in seconds; UpperBound 0 is the
// final unbounded bucket, rendered as +Inf per the exposition format.
func promLE(d time.Duration) string {
	if d == 0 {
		return "+Inf"
	}
	return promFloat(d.Seconds())
}

// promFloat renders a float sample the exposition way: shortest decimal form,
// never scientific notation for the magnitudes in play here.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
