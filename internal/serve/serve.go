// Package serve turns the benchmark pipeline into a long-running evaluation
// service: benchmark-as-a-service instead of a one-shot table printer. It
// exposes every task in the core registry through one generic HTTP/JSON
// eval endpoint (plus GET /v1/tasks discovery) whose batch responses stream
// back as NDJSON in example order while completions are still running
// (built on the generic core task driver / runner.MapStream), serves
// rendered paper artifacts from a seed-keyed cache whose cold starts
// coalesce through runner.Flight, and reports request/coalescing/cache
// counters for operability. cmd/sqlserved is the thin binary around it.
package serve

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Config controls service construction.
type Config struct {
	// Seed is the benchmark seed used when a request does not specify one.
	// 0 means 1, matching core.Build.
	DefaultSeed int64
	// Verify engine-checks generated equivalence pairs during environment
	// builds. Off by default for service latency; artifact output then
	// matches `sqlbench -noverify`.
	Verify bool
	// Parallel is the worker budget for environment builds and eval fan-out
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallel int
	// NoOptimize turns the engine's plan optimizer off for equivalence
	// verification during environment builds (ablation; artifact output is
	// byte-identical either way).
	NoOptimize bool
	// EnvCacheCap bounds the number of cached evaluation environments
	// (seed × verify combinations); least-recently-used environments are
	// evicted beyond it so long-lived processes don't grow without bound.
	// 0 means the default of 4; negative means unbounded.
	EnvCacheCap int
	// ArtifactCacheCap bounds the rendered-artifact cache the same way.
	// 0 means the default of 256; negative means unbounded.
	ArtifactCacheCap int
	// RPS enables per-client admission control: each client (remote host)
	// may issue this many requests per second, with Burst of headroom;
	// over-limit requests are rejected with 429 + Retry-After and counted as
	// rate_limited in /v1/metrics. 0 disables admission control.
	RPS float64
	// Burst is the admission-control burst capacity (minimum 1).
	Burst int
	// TokensPerMin enables spend-based admission control on top of the
	// request-rate bucket: each client may consume this many completion
	// tokens per minute across its evals (with one minute's budget of
	// burst). Over-budget eval requests are rejected with 429 + Retry-After
	// and counted as token_limited in /v1/metrics. 0 disables it.
	TokensPerMin float64
	// Models optionally replaces the default simulated models with a
	// config-driven spec set (sqlserved -models); see llm.Spec.
	Models []llm.Spec
	// Logger receives structured request logs (one record per request, with
	// the trace id); nil disables logging.
	Logger *slog.Logger
	// TraceRing bounds the in-memory span ring served at GET /v1/trace:
	// 0 means the default of 2048, negative disables span retention (request
	// ids are still generated and propagated).
	TraceRing int
}

// Default cache caps: environments embed a whole benchmark plus memoized
// model results (tens of MB each), artifacts are small rendered text.
const (
	defaultEnvCacheCap      = 4
	defaultArtifactCacheCap = 256
	defaultTraceRing        = 2048
)

// cacheCap resolves a configured cap: 0 = default, negative = unbounded.
func cacheCap(configured, def int) int {
	switch {
	case configured == 0:
		return def
	case configured < 0:
		return 0 // Flight treats 0 as unbounded
	default:
		return configured
	}
}

// envKey identifies one cached evaluation environment.
type envKey struct {
	seed   int64
	verify bool
}

// artifactKey identifies one rendered experiment artifact.
type artifactKey struct {
	envKey
	id string
}

// Server is the evaluation service. It is safe for concurrent use; all
// shared state lives behind runner.Flight caches or atomic counters.
type Server struct {
	cfg     Config
	metrics *Metrics
	// llmStats aggregates per-model request/token/latency telemetry across
	// every cached environment (the env builder instruments each client with
	// it); /v1/metrics reports it under "models". llmClients shares
	// spec-built clients across environments so configured provider limits
	// (rate, in-flight, cache) apply globally, not per cached seed.
	llmStats   *llm.Stats
	llmClients llm.ClientCache
	// spend tracks per-client completion-token budgets when spend-based
	// admission control is enabled (nil otherwise).
	spend *spendLimiter
	// tracer creates request spans and retains the bounded ring behind
	// GET /v1/trace; every request is rooted in a span whose trace id doubles
	// as the X-Request-Id.
	tracer *obs.Tracer
	mux    *http.ServeMux

	// envs caches fully built evaluation environments per (seed, verify):
	// the benchmark plus simulated model registry plus memoized cell
	// results. artifacts caches rendered experiment output per environment
	// and experiment ID. Both coalesce concurrent cold-start requests onto
	// a single computation via Flight.
	envs      runner.Flight[envKey, *experiments.Env]
	artifacts runner.Flight[artifactKey, []byte]
}

// NewServer builds the service and its routing table.
func NewServer(cfg Config) *Server {
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 1
	}
	s := &Server{cfg: cfg, metrics: NewMetrics(), llmStats: llm.NewStats(), mux: http.NewServeMux()}
	s.envs.SetLimit(cacheCap(cfg.EnvCacheCap, defaultEnvCacheCap))
	s.artifacts.SetLimit(cacheCap(cfg.ArtifactCacheCap, defaultArtifactCacheCap))
	if cfg.TokensPerMin > 0 {
		s.spend = newSpendLimiter(cfg.TokensPerMin)
	}
	if ringCap := cacheCap(cfg.TraceRing, defaultTraceRing); ringCap > 0 {
		s.tracer = obs.New(obs.WithRing(ringCap))
	} else {
		s.tracer = obs.New()
	}
	s.mux.HandleFunc("POST /v1/eval/{task}", s.handleEval)
	s.mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/metrics/prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return s
}

// Handler returns the service's root handler with middleware applied:
// recovery outermost, then request-id/span creation (so every inner layer —
// logging included — sees the trace id), then logging and request counting,
// then per-client admission control (so shed requests are still counted and
// logged), then spend-based token-budget admission layered inside the
// request-rate bucket.
func (s *Server) Handler() http.Handler {
	return chain(s.mux,
		recovery(s.cfg.Logger),
		requestID(s.tracer),
		requestLog(s.cfg.Logger),
		count(s.metrics),
		admission(s.cfg.RPS, s.cfg.Burst, s.metrics),
		spendAdmission(s.spend, s.metrics),
	)
}

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ModelStats exposes the per-model usage telemetry (for tests and
// embedding).
func (s *Server) ModelStats() *llm.Stats { return s.llmStats }

// env returns the cached evaluation environment for key, building it on
// first use. Concurrent cold requests coalesce; hits are counted.
func (s *Server) env(key envKey) (*experiments.Env, error) {
	env, shared, err := s.envs.DoShared(key, func() (*experiments.Env, error) {
		return experiments.NewEnvConfig(experiments.Config{
			Seed:               key.seed,
			VerifyEquivalences: key.verify,
			NoOptimize:         s.cfg.NoOptimize,
			Parallel:           s.cfg.Parallel,
			Models:             s.cfg.Models,
			Stats:              s.llmStats,
			ClientCache:        &s.llmClients,
			Tracer:             s.tracer,
		})
	})
	if shared {
		s.metrics.CoalesceHits.Add(1)
	}
	s.syncCacheMetrics()
	return env, err
}

// syncCacheMetrics mirrors the Flight cache sizes and eviction totals into
// the metrics snapshot.
func (s *Server) syncCacheMetrics() {
	s.metrics.EnvCacheSize.Store(int64(s.envs.Len()))
	s.metrics.ArtifactCacheSize.Store(int64(s.artifacts.Len()))
	s.metrics.CacheEvictions.Store(s.envs.Evictions() + s.artifacts.Evictions())
}

// artifact returns the rendered output of one experiment for key, running
// the experiment on first use. Concurrent cold requests for the same
// artifact trigger exactly one render; hits are counted.
func (s *Server) artifact(key artifactKey) ([]byte, error) {
	out, shared, err := s.artifacts.DoShared(key, func() ([]byte, error) {
		exp, ok := experiments.ByID(key.id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", key.id)
		}
		env, err := s.env(key.envKey)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := exp.Run(env, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if shared {
		s.metrics.CoalesceHits.Add(1)
	}
	s.syncCacheMetrics()
	return out, err
}
