package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAllowDirectives checks the suppression contract end to end: a
// justified //lint:allow marks the finding allowed and records the
// reason, a reason-less directive suppresses nothing and is itself
// flagged, and untouched findings stay active.
func TestAllowDirectives(t *testing.T) {
	pkg := linttest.LoadPackage(t, "testdata/allow/src", "datagen")
	diags := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{lint.DetSource})

	var allowed, active, meta []lint.Diagnostic
	for _, d := range diags {
		switch {
		case d.Rule == "lint":
			meta = append(meta, d)
		case d.Allowed:
			allowed = append(allowed, d)
		default:
			active = append(active, d)
		}
	}

	if len(allowed) != 1 {
		t.Fatalf("want exactly one allowlisted finding, got %d: %+v", len(allowed), allowed)
	}
	if want := "goldens embed a fixed build epoch on purpose"; allowed[0].Reason != want {
		t.Errorf("allowlisted reason = %q, want %q", allowed[0].Reason, want)
	}
	if allowed[0].Rule != "detsource" {
		t.Errorf("allowlisted rule = %q, want detsource", allowed[0].Rule)
	}

	// The reason-less directive must not suppress its line's finding,
	// so Bare() and Naked() both stay active.
	if len(active) != 2 {
		t.Fatalf("want two active findings, got %d: %+v", len(active), active)
	}

	if len(meta) != 1 {
		t.Fatalf("want one malformed-directive finding, got %d: %+v", len(meta), meta)
	}
	if !strings.Contains(meta[0].Message, "no reason") {
		t.Errorf("malformed-directive message = %q, want it to demand a reason", meta[0].Message)
	}
}

// TestAllowWrongRule checks that a directive only suppresses its own
// rule: the Analyze pass below runs detsource against a file whose only
// directive names a different rule, so nothing may be suppressed.
func TestAllowScoping(t *testing.T) {
	pkg := linttest.LoadPackage(t, "testdata/allow/src", "datagen")
	diags := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{lint.MapOrder})
	for _, d := range diags {
		if d.Rule == "maporder" {
			t.Fatalf("maporder should find nothing in the allow fixture, got %+v", d)
		}
	}
}

// TestDiagnosticsSorted checks Analyze's output ordering contract.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := linttest.LoadPackage(t, "testdata/allow/src", "datagen")
	diags := lint.Analyze([]*lint.Package{pkg}, lint.Analyzers())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %+v before %+v", a, b)
		}
	}
}
