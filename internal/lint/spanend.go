package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd checks, lostcancel-style, that every span returned by
// obs.Start / obs.StartTrace reaches End or EndErr on all return paths
// of the function that created it. A span that is never ended is never
// delivered to the tracer's sink: the trace silently loses the whole
// subtree, and with the ring sink the leak is invisible until someone
// needs the missing span. The nil-tracer idiom is understood: End on a
// nil *Span is a no-op, so `if sp == nil { return ... }` early exits
// and `if sp != nil { sp.EndErr(err) }` guards both count as properly
// ended, as does handing the span to a deferred call, a closure, or
// any other owner (struct field, function argument, return value).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "require every obs.Start/StartTrace span to reach End/EndErr " +
		"on all return paths (or be handed off to another owner)",
	Run: runSpanEnd,
}

func runSpanEnd(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncSpans(p, body)
			}
			return true
		})
	}
}

// isObsStart resolves call to obs.Start / obs.StartTrace.
func isObsStart(info *types.Info, call *ast.CallExpr) (string, bool) {
	callee := calleeFunc(info, call)
	if callee == nil {
		return "", false
	}
	if name := callee.Name(); name == "Start" || name == "StartTrace" {
		if path := pkgPathOf(callee); pathHasSegment(path, "obs") {
			return name, true
		}
	}
	return "", false
}

// checkFuncSpans finds spans created directly in this function body
// (spans created inside nested literals are those literals' problem)
// and verifies each one ends.
func checkFuncSpans(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
				if name, ok := isObsStart(p.Info, call); ok {
					p.Reportf(call.Pos(),
						"result of obs.%s is discarded: the span can never End and its subtree is lost from the trace", name)
				}
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isObsStart(p.Info, call)
			if !ok || len(stmt.Lhs) != 2 {
				return true
			}
			id, ok := stmt.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				p.Reportf(call.Pos(),
					"span from obs.%s is assigned to _: it can never End and its subtree is lost from the trace", name)
				return true
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				checkSpanVar(p, body, stmt, call, name, id, obj)
			}
		}
		return true
	})
}

// checkSpanVar verifies one named span variable.
func checkSpanVar(p *Pass, body *ast.BlockStmt, assign *ast.AssignStmt, call *ast.CallExpr, startName string, def *ast.Ident, obj types.Object) {
	var (
		deferred   bool // defer sp.End()/EndErr(...) anywhere in the function
		escaped    bool // span handed to a closure, field, call, ... — new owner
		hasEndCall bool
	)
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if p.Info.Uses[id] != obj && p.Info.Defs[id] != obj {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				// Captured by a closure (deferred cleanup funcs, range
				// callbacks, goroutines): ownership is out of this
				// function's hands.
				escaped = true
				return true
			}
		}
		if len(stack) == 0 {
			return true
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// sp.Method(...): benign attribute setters, or the End
			// itself (possibly deferred).
			if isEndName(parent.Sel.Name) {
				hasEndCall = true
				if len(stack) >= 3 {
					if _, ok := stack[len(stack)-3].(*ast.DeferStmt); ok {
						deferred = true
					}
				}
			}
		case *ast.BinaryExpr:
			// sp == nil / sp != nil guards.
			if parent.Op != token.EQL && parent.Op != token.NEQ {
				escaped = true
			}
		case *ast.AssignStmt:
			isLHS := false
			for _, l := range parent.Lhs {
				if l == ast.Node(id) {
					isLHS = true
				}
			}
			if isLHS && parent != assign {
				// Reassigned: give up rather than guess.
				escaped = true
			} else if !isLHS {
				// Span value stored somewhere else.
				escaped = true
			}
		default:
			// Call argument, composite literal, return value, channel
			// send, map/slice element, ...: the span has a new owner
			// that is responsible for ending it.
			escaped = true
		}
		return true
	})

	if deferred || escaped {
		return
	}
	if !hasEndCall {
		p.Reportf(call.Pos(),
			"span %q from obs.%s is never ended: call %s.End() or %s.EndErr(err) (deferring it is simplest)",
			def.Name, startName, def.Name, def.Name)
		return
	}

	// The span is ended somewhere, inline. Verify every path from the
	// creation site reaches an End before returning or leaving the
	// declaring block.
	block, idx := enclosingBlock(body, assign)
	if block == nil || !declaredWithin(obj, block) {
		// Unusual shape (if-init declaration, or the variable outlives
		// the block): the End call we found is the best we can verify.
		return
	}
	w := &spanFlow{p: p, obj: obj}
	ended := w.walkList(block.List[idx+1:], false, false)
	if !w.hasViolation && !ended {
		w.hasViolation = true
		w.violationPos = block.End()
	}
	if w.hasViolation {
		at := p.Fset.Position(w.violationPos)
		p.Reportf(call.Pos(),
			"span %q from obs.%s does not reach End/EndErr on all paths: the path through line %d drops it",
			def.Name, startName, at.Line)
	}
}

func isEndName(name string) bool { return name == "End" || name == "EndErr" }

// enclosingBlock finds the innermost block that directly contains stmt
// and stmt's index within it.
func enclosingBlock(body *ast.BlockStmt, stmt ast.Stmt) (*ast.BlockStmt, int) {
	var foundBlock *ast.BlockStmt
	foundIdx := -1
	ast.Inspect(body, func(n ast.Node) bool {
		if foundBlock != nil {
			return false
		}
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range b.List {
			if s == ast.Stmt(stmt) {
				foundBlock, foundIdx = b, i
				return false
			}
		}
		return true
	})
	return foundBlock, foundIdx
}

// spanFlow is a small abstract interpreter over statement lists
// tracking one bit — "has the span been ended on this path" — with one
// refinement: inside a branch where the span is known nil, End is not
// required (End on a nil span is a no-op, so there is nothing to lose).
type spanFlow struct {
	p            *Pass
	obj          types.Object
	hasViolation bool
	violationPos token.Pos
}

// walkList interprets stmts sequentially. ended is the incoming state;
// knownNil means the span is provably nil on this path. The return
// value is the state at fall-through.
func (w *spanFlow) walkList(stmts []ast.Stmt, ended, knownNil bool) bool {
	for _, s := range stmts {
		ended = w.walkStmt(s, ended, knownNil)
	}
	return ended
}

func (w *spanFlow) walkStmt(s ast.Stmt, ended, knownNil bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.isEndCall(s.X) || isPanicCall(w.p.Info, s.X) {
			return true
		}
	case *ast.ReturnStmt:
		if !ended && !knownNil {
			w.violate(s.Pos())
		}
		// Unreachable code follows; the state no longer matters.
		return ended
	case *ast.BlockStmt:
		return w.walkList(s.List, ended, knownNil)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, ended, knownNil)
	case *ast.IfStmt:
		if w.isNilCheck(s.Cond, token.EQL) {
			// if sp == nil { ... }: body runs with a nil span.
			w.walkList(s.Body.List, ended, true)
			if s.Else != nil {
				return w.walkStmt(s.Else, ended, knownNil)
			}
			return ended
		}
		if w.isNilCheck(s.Cond, token.NEQ) {
			// if sp != nil { ... }: an End inside the guard fully ends
			// the span — on the else path it is nil and needs none.
			bodyEnded := w.walkList(s.Body.List, ended, knownNil)
			if s.Else != nil {
				w.walkStmt(s.Else, ended, true)
			}
			return bodyEnded
		}
		bodyEnded := w.walkList(s.Body.List, ended, knownNil)
		elseEnded := ended
		if s.Else != nil {
			elseEnded = w.walkStmt(s.Else, ended, knownNil)
		}
		return bodyEnded && elseEnded
	case *ast.ForStmt:
		if s.Body != nil {
			w.walkList(s.Body.List, ended, knownNil)
		}
		return ended
	case *ast.RangeStmt:
		if s.Body != nil {
			w.walkList(s.Body.List, ended, knownNil)
		}
		return ended
	case *ast.SwitchStmt:
		return w.walkCases(s.Body, ended, knownNil)
	case *ast.TypeSwitchStmt:
		return w.walkCases(s.Body, ended, knownNil)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, ended, knownNil)
	}
	return ended
}

// walkCases interprets switch/select clause bodies. The merged state is
// the conjunction over clauses when the statement is exhaustive (has a
// default, or is a select, which always runs one clause), else the
// incoming state.
func (w *spanFlow) walkCases(body *ast.BlockStmt, ended, knownNil bool) bool {
	if body == nil {
		return ended
	}
	all := true
	exhaustive := false
	for _, cs := range body.List {
		var clause []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			clause = cs.Body
			if cs.List == nil {
				exhaustive = true
			}
		case *ast.CommClause:
			clause = cs.Body
			exhaustive = true
		default:
			continue
		}
		if !w.walkList(clause, ended, knownNil) {
			all = false
		}
	}
	if exhaustive {
		return all
	}
	return ended
}

func (w *spanFlow) violate(pos token.Pos) {
	if !w.hasViolation {
		w.hasViolation = true
		w.violationPos = pos
	}
}

// isEndCall reports whether e is sp.End(...) or sp.EndErr(...) on the
// tracked span variable.
func (w *spanFlow) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isEndName(sel.Sel.Name) {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.p.Info.Uses[id] == w.obj
}

// isNilCheck reports whether cond is `sp <op> nil` for the tracked span.
func (w *spanFlow) isNilCheck(cond ast.Expr, op token.Token) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != op {
		return false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	return w.sideIsSpan(x) && isNilIdent(w.p.Info, y) ||
		w.sideIsSpan(y) && isNilIdent(w.p.Info, x)
}

func (w *spanFlow) sideIsSpan(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && w.p.Info.Uses[id] == w.obj
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// isPanicCall reports whether e is a call to the panic builtin; a
// panicking path unwinds the whole trace anyway, so a span lost to it
// is not a leak the analyzer should charge to the author.
func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
