// Package lint is a dependency-free static-analysis framework that
// mechanizes the repository's determinism and concurrency invariants.
//
// Every PR so far has re-proved the same guarantees by brute force —
// byte-identical artifacts across parallel 1/8, optimize on/off, store
// vs. memory — through expensive differential tests. The analyzers in
// this package turn those tribal invariants into compile-time checks:
//
//   - detsource:  no wall clock, global math/rand, or environment reads
//     in determinism-critical packages
//   - maporder:   no order-sensitive work inside map iteration without a
//     deterministic sort afterwards
//   - atomicmix:  a field touched via sync/atomic is never read or
//     written plainly
//   - spanend:    every obs.Start/StartTrace span reaches End/EndErr on
//     all return paths
//   - errclass:   llm completion paths return typed *llm.Error, not bare
//     fmt.Errorf / errors.New
//
// The framework is stdlib-only (go/ast, go/parser, go/types, and a
// `go list -json` driver); the module has zero external dependencies
// and must stay that way.
//
// Findings are suppressible only via an explicit
//
//	//lint:allow <rule> <reason>
//
// comment on the offending line or on its own line directly above.
// Suppressed findings are still recorded (Diagnostic.Allowed=true, with
// the reason) so the suppression surface stays auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Allowed reports that an explicit //lint:allow directive suppressed
	// this finding; Reason records the justification it carried.
	Allowed bool   `json:"allowed"`
	Reason  string `json:"reason,omitempty"`
}

// Analyzer is one named rule. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	at := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    at.Filename,
		Line:    at.Line,
		Col:     at.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetSource,
		MapOrder,
		AtomicMix,
		SpanEnd,
		ErrClass,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Analyze runs the given analyzers over the given packages, applies
// //lint:allow directives, and returns all diagnostics (allowed ones
// included, marked) sorted by file, line, column, rule.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = applyAllows(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file   string
	line   int
	rule   string
	reason string
}

// applyAllows scans pkg's comments for //lint:allow directives and marks
// matching diagnostics as allowed. A directive suppresses findings for
// its rule on the same line or on the line directly below (directive on
// its own line above the offending statement). A directive with no
// reason is itself a finding: suppressions must be auditable.
func applyAllows(pkg *Package, diags []Diagnostic) []Diagnostic {
	var directives []allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				at := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						File: at.Filename, Line: at.Line, Col: at.Column,
						Rule:    "lint",
						Message: "malformed //lint:allow directive: want //lint:allow <rule> <reason>",
					})
					continue
				}
				rule, reason := fields[0], strings.Join(fields[1:], " ")
				if reason == "" {
					diags = append(diags, Diagnostic{
						File: at.Filename, Line: at.Line, Col: at.Column,
						Rule:    "lint",
						Message: fmt.Sprintf("//lint:allow %s has no reason; suppressions must say why", rule),
					})
					continue
				}
				directives = append(directives, allowDirective{
					file: at.Filename, line: at.Line, rule: rule, reason: reason,
				})
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	for i := range diags {
		d := &diags[i]
		if d.Allowed || d.Rule == "lint" {
			continue
		}
		for _, dir := range directives {
			if dir.file != d.File || dir.rule != d.Rule {
				continue
			}
			if dir.line == d.Line || dir.line == d.Line-1 {
				d.Allowed = true
				d.Reason = dir.reason
				break
			}
		}
	}
	return diags
}

// determinismCritical lists the package path segments whose build paths
// must be bit-reproducible: any package whose import path contains one
// of these segments feeds benchmark artifacts, so a stray wall-clock
// read or random map iteration there silently breaks the byte-identity
// guarantee every PR has preserved.
var determinismCritical = map[string]bool{
	"datagen":  true,
	"sqlast":   true,
	"workload": true,
	"nlgen":    true,
	"mutate":   true,
	"engine":   true,
	"equiv":    true,
	"core":     true,
}

// isDeterminismCritical reports whether the import path names a package
// whose outputs must be byte-reproducible.
func isDeterminismCritical(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if determinismCritical[seg] {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil (builtins, func-typed variables, type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and the universe scope.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathHasSegment reports whether the import path contains seg as a
// whole path element (so "internal/llm" matches "llm" but
// "internal/llmx" does not).
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// shortPath renders a file path relative to the current directory when
// that is shorter, for compact cross-reference messages.
func shortPath(path string) string {
	if cwd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(cwd, path); err == nil && len(rel) < len(path) {
			return rel
		}
	}
	return path
}

// inspectWithStack walks the AST under root calling f with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false from f prunes the subtree.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
