// Package linttest is a stdlib-only golden-file harness for the lint
// analyzers, in the style of golang.org/x/tools' analysistest: testdata
// packages annotate the lines where findings are expected with
//
//	code() // want "regexp" "another regexp"
//
// comments, and Run fails the test when expectations and diagnostics
// disagree in either direction.
//
// Testdata lives under a GOPATH-like layout, root/<import path>/*.go,
// so a rule that keys off import paths (detsource's critical-package
// list, spanend's obs match, errclass's llm match) can be exercised
// with small self-contained stub packages; imports between testdata
// packages resolve within root, and everything else falls back to the
// standard library's source importer.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run analyzes each listed package under root with the single analyzer
// a and checks the diagnostics against the packages' want comments.
func Run(t *testing.T, a *lint.Analyzer, root string, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	im := newImporter(fset, root)
	for _, path := range pkgPaths {
		pkg, err := im.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags := lint.Analyze([]*lint.Package{pkg}, []*lint.Analyzer{a})
		checkWants(t, fset, pkg, diags)
	}
}

// LoadPackage loads one testdata package for tests that assert on raw
// diagnostics (allow-directive behavior, JSON fields) rather than want
// comments.
func LoadPackage(t *testing.T, root, path string) *lint.Package {
	t.Helper()
	pkg, err := newImporter(token.NewFileSet(), root).load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return pkg
}

// srcImporter resolves import paths against the testdata root first and
// the real standard library second.
type srcImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*lint.Package
}

func newImporter(fset *token.FileSet, root string) *srcImporter {
	return &srcImporter{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*lint.Package{},
	}
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(im.root, path); isDir(dir) {
		pkg, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

func (im *srcImporter) load(path string) (*lint.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := lint.Check(path, im.fset, files, im)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// wantRx is one expectation: a regexp at a file:line.
type wantRx struct {
	rx      *regexp.Regexp
	text    string
	matched bool
}

var wantComment = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants cross-checks diagnostics against want comments: every want
// must be matched by a diagnostic on its line, and every diagnostic
// must be anticipated by a want.
func checkWants(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[string][]*wantRx{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				at := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", at.Filename, at.Line)
				for _, quoted := range wantComment.FindAllString(text, -1) {
					pattern := strings.Trim(quoted, "`")
					if strings.HasPrefix(quoted, `"`) {
						var err error
						pattern, err = strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, quoted, err)
						}
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
					}
					wants[key] = append(wants[key], &wantRx{rx: rx, text: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for _, w := range wants[key] {
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", d.File, d.Line, d.Rule, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.text)
			}
		}
	}
}
