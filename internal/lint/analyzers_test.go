package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over a positive/negative testdata tree: the
// flagged shapes carry // want comments, the sanctioned idioms carry
// none, and the harness fails on a mismatch in either direction.

func TestDetSource(t *testing.T) {
	linttest.Run(t, lint.DetSource, "testdata/detsource/src", "datagen", "app")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder/src", "engine")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMix, "testdata/atomicmix/src", "counter")
}

func TestSpanEnd(t *testing.T) {
	linttest.Run(t, lint.SpanEnd, "testdata/spanend/src", "svc")
}

func TestErrClass(t *testing.T) {
	linttest.Run(t, lint.ErrClass, "testdata/errclass/src", "llm")
}

func TestAnalyzerRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if lint.AnalyzerByName(a.Name) != a {
			t.Fatalf("AnalyzerByName(%q) does not round-trip", a.Name)
		}
	}
	if lint.AnalyzerByName("no-such-rule") != nil {
		t.Fatal("AnalyzerByName of an unknown rule should be nil")
	}
	if len(names) != 5 {
		t.Fatalf("expected the five-rule suite, got %d", len(names))
	}
}
