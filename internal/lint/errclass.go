package lint

import (
	"go/ast"
	"go/types"
)

// ErrClass checks that llm completion paths — any function or closure
// under an llm package whose signature returns (llm.Response, error) or
// (*llm.Response, error) — never return a bare fmt.Errorf / errors.New
// error. Everything above the provider boundary classifies failures
// through *llm.Error (Retryable(), Retry-After hints, breaker evidence,
// serve's status mapping); an untyped error defeats all of it: Retry
// treats the attempt as non-retryable-unknown, the breaker records
// generic evidence, and the server has no status to surface. Wrapping
// an existing error (return resp, err) is fine — only direct bare
// construction on the completion path is flagged.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "require llm completion paths (functions returning " +
		"(llm.Response, error)) to return typed *llm.Error, not bare " +
		"fmt.Errorf / errors.New",
	Run: runErrClass,
}

func runErrClass(p *Pass) {
	if !pathHasSegment(p.Pkg.Path(), "llm") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var (
				body *ast.BlockStmt
				sig  *types.Signature
			)
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					sig, _ = obj.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = fn.Body
				if tv, ok := p.Info.Types[fn]; ok {
					sig, _ = tv.Type.(*types.Signature)
				}
			default:
				return true
			}
			if body == nil || sig == nil || !isCompletionSignature(sig) {
				return true
			}
			checkCompletionReturns(p, body, sig)
			return true
		})
	}
}

// isCompletionSignature reports whether sig is a completion path:
// results include an llm Response (by value or pointer) and end with
// error.
func isCompletionSignature(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() < 2 {
		return false
	}
	last := res.At(res.Len() - 1)
	if !types.Identical(last.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	for i := 0; i < res.Len()-1; i++ {
		t := res.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Response" && pathHasSegment(pkgPathOf(obj), "llm") {
			return true
		}
	}
	return false
}

// checkCompletionReturns flags return statements in body (nested
// function literals excluded — they are checked against their own
// signatures) whose error result is constructed bare.
func checkCompletionReturns(p *Pass, body *ast.BlockStmt, sig *types.Signature) {
	nres := sig.Results().Len()
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != nres {
			return true
		}
		errExpr := ast.Unparen(ret.Results[nres-1])
		call, ok := errExpr.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil {
			return true
		}
		var bare string
		switch {
		case pkgPathOf(callee) == "fmt" && callee.Name() == "Errorf":
			bare = "fmt.Errorf"
		case pkgPathOf(callee) == "errors" && callee.Name() == "New":
			bare = "errors.New"
		default:
			return true
		}
		p.Reportf(ret.Pos(),
			"completion path returns a bare %s error: wrap it in a typed *llm.Error (status/code/Err) so Retry, the breaker, and serve can classify it",
			bare)
		return true
	})
}
