package lint

import (
	"go/ast"
	"go/types"
)

// DetSource flags nondeterminism sources in determinism-critical
// packages: wall-clock reads, the globally-seeded math/rand functions,
// and environment lookups. Benchmark artifacts must be a pure function
// of the seed; any of these would make two builds of the same seed
// diverge (or make them diverge across machines), breaking the
// byte-identical-artifacts guarantee that the differential tests and
// the sharded-build roadmap item depend on.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc: "forbid time.Now, global math/rand, and env reads in " +
		"determinism-critical packages (datagen, sqlast, workload, " +
		"nlgen, mutate, engine, equiv, core)",
	Run: runDetSource,
}

// randConstructors are the math/rand names that build an explicitly
// seeded generator rather than consuming the global one; those are the
// sanctioned way to get randomness in build paths.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// detTimeFuncs are the wall-clock reads; time.Date etc. construct fixed
// values and are fine.
var detTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// detEnvFuncs are the environment reads that make output depend on the
// process environment.
var detEnvFuncs = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

func runDetSource(p *Pass) {
	if !isDeterminismCritical(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			// Methods (r.Intn on an explicitly seeded *rand.Rand, say)
			// also belong to their defining package; only package-level
			// functions consume ambient state.
			if fn, ok := obj.(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
			}
			name := obj.Name()
			switch pkgPathOf(obj) {
			case "time":
				if detTimeFuncs[name] {
					p.Reportf(sel.Pos(),
						"time.%s in determinism-critical package %s: artifacts must be a pure function of the seed; take timestamps outside the build path",
						name, p.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[name] {
					p.Reportf(sel.Pos(),
						"global math/rand.%s in determinism-critical package %s: use an explicitly seeded *rand.Rand plumbed from the caller",
						name, p.Pkg.Path())
				}
			case "os":
				if detEnvFuncs[name] {
					p.Reportf(sel.Pos(),
						"os.%s in determinism-critical package %s: environment-dependent branches break reproducible builds; thread configuration through explicit parameters",
						name, p.Pkg.Path())
				}
			}
			return true
		})
	}
}
