// Package llm stubs the provider layer: errclass applies to any
// function under an llm package whose signature returns
// (Response, error) — the completion path all middleware composes over.
package llm

import (
	"context"
	"errors"
	"fmt"
)

type Response struct{ Text string }

type Error struct {
	Status  int
	Code    string
	Message string
	Err     error
}

func (e *Error) Error() string { return e.Message }

type Client interface {
	Do(ctx context.Context, prompt string) (Response, error)
}

func BareErrorf(ctx context.Context, prompt string) (Response, error) {
	if prompt == "" {
		return Response{}, fmt.Errorf("empty prompt") // want `bare fmt\.Errorf`
	}
	return Response{Text: prompt}, nil
}

func BareNewPtr(ctx context.Context, prompt string) (*Response, error) {
	if prompt == "" {
		return nil, errors.New("empty prompt") // want `bare errors\.New`
	}
	return &Response{Text: prompt}, nil
}

// Typed construction is the sanctioned form.
func Typed(ctx context.Context, prompt string) (Response, error) {
	if prompt == "" {
		return Response{}, &Error{Status: 400, Code: "invalid_request", Message: "empty prompt"}
	}
	return Response{Text: prompt}, nil
}

// Passing an upstream error through unchanged is fine; it was
// classified (or not) where it was created.
func Passthrough(ctx context.Context, c Client, prompt string) (Response, error) {
	resp, err := c.Do(ctx, prompt)
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Middleware closures are completion paths too, checked against their
// own literal signatures.
func Middleware() func(context.Context, string) (Response, error) {
	return func(ctx context.Context, prompt string) (Response, error) {
		return Response{}, fmt.Errorf("boom") // want `bare fmt\.Errorf`
	}
}

// Config/validation paths return no Response and are exempt.
func ParseSpec(raw string) (int, error) {
	if raw == "" {
		return 0, fmt.Errorf("empty spec")
	}
	return len(raw), nil
}
