// Package app is not determinism-critical: wall clocks, the global
// rand, and env reads are all legitimate here and must not be flagged.
package app

import (
	"math/rand"
	"os"
	"time"
)

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Jitter() int { return rand.Intn(100) }

func Home() string { return os.Getenv("HOME") }
