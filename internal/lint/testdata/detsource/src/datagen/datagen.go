// Package datagen stands in for a determinism-critical build package:
// its import path ends in a critical segment, so ambient entropy is
// forbidden.
package datagen

import (
	"math/rand"
	"os"
	"time"
)

// Build mixes sanctioned and forbidden entropy sources.
func Build(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))            // explicit seeded constructor: fine
	n := int64(r.Intn(10))                         // method on the seeded generator: fine
	n += time.Now().Unix()                         // want `time\.Now in determinism-critical`
	n += time.Since(time.Unix(0, 0)).Nanoseconds() // want `time\.Since in determinism-critical`
	n += int64(rand.Intn(3))                       // want `global math/rand\.Intn`
	if os.Getenv("REPRO_MODE") != "" {             // want `os\.Getenv in determinism-critical`
		n++
	}
	return n
}

// Elapsed only manipulates time values deterministically: fine.
func Elapsed(d time.Duration) time.Duration { return d * 2 }
