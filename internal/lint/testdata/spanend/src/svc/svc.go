// Package svc exercises the spanend rule against the idioms the real
// codebase uses: deferred ends, nil-tracer guards, handoffs, and the
// leaky shapes the rule exists to catch.
package svc

import (
	"context"
	"errors"

	"obs"
)

func leakEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "op") // want `does not reach End/EndErr on all paths`
	if fail {
		return errors.New("fail")
	}
	sp.End()
	return nil
}

func leakOneBranch(ctx context.Context, fail bool) {
	_, sp := obs.Start(ctx, "op") // want `does not reach End/EndErr on all paths`
	if fail {
		sp.End()
	}
}

func discarded(ctx context.Context) {
	obs.Start(ctx, "op") // want `result of obs\.Start is discarded`
}

func blank(ctx context.Context) {
	_, _ = obs.StartTrace(ctx, "op", "trace") // want `span from obs\.StartTrace is assigned to _`
}

func neverEnded(ctx context.Context) {
	_, sp := obs.Start(ctx, "op") // want `never ended`
	sp.SetString("k", "v")
}

func deferredEnd(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "op")
	defer sp.End()
	if fail {
		return errors.New("fail")
	}
	return nil
}

func deferredClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, "op")
	defer func() { sp.End() }()
}

func nilGuardEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "op")
	if sp == nil {
		// A nil span (no tracer) needs no End.
		return work()
	}
	if fail {
		err := errors.New("fail")
		sp.EndErr(err)
		return err
	}
	sp.End()
	return nil
}

func nilGuardedEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "op")
	_ = work()
	if sp != nil {
		sp.SetString("k", "v")
		sp.EndErr(nil)
	}
}

func errBranches(ctx context.Context) error {
	_, sp := obs.Start(ctx, "op")
	if err := work(); err != nil {
		sp.EndErr(err)
		return err
	}
	sp.End()
	return nil
}

func escapeToClosure(ctx context.Context) func() {
	_, sp := obs.Start(ctx, "op")
	return func() { sp.End() }
}

func handedOff(ctx context.Context) {
	_, sp := obs.Start(ctx, "op")
	finish(sp)
}

func storedInStruct(ctx context.Context) *holder {
	_, sp := obs.Start(ctx, "op")
	return &holder{sp: sp}
}

type holder struct{ sp *obs.Span }

func finish(sp *obs.Span) { sp.End() }

func work() error { return nil }
