// Package obs is a minimal stub of the real tracing package: spanend
// matches obs.Start/StartTrace by package-path segment and name, so the
// testdata packages can exercise it without importing internal/obs.
package obs

import "context"

type Span struct{ name string }

func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func StartTrace(ctx context.Context, name, traceID string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func (s *Span) End() {}

func (s *Span) EndErr(err error) {}

func (s *Span) SetString(k, v string) {}
