// Package engine stands in for a determinism-critical package with map
// iteration in its build paths.
package engine

import (
	"fmt"
	"sort"
)

// Keys leaks randomized map order into its result.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys" without a deterministic sort`
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the sanctioned collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SelectedKeys sorts through sort.Slice, which also counts.
func SelectedKeys(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Dump emits during iteration: no later sort can fix the output order.
func Dump(m map[string]int) {
	for k, v := range m { // want `map iteration writes to a sink via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Stream sends entries onward in randomized order.
func Stream(m map[string]int, out chan<- string) {
	for k := range m { // want `map iteration sends on a channel`
		out <- k
	}
}

// Sum is order-insensitive aggregation: fine.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map, which has no order to corrupt: fine.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// PerEntry appends to a slice scoped to one iteration: fine.
func PerEntry(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
