// Package datagen (allow-directive fixture): one properly justified
// suppression, one directive with no reason, one unsuppressed finding.
package datagen

import "time"

//lint:allow detsource goldens embed a fixed build epoch on purpose
func Epoch() int64 { return time.Now().Unix() }

func Bare() int64 {
	return time.Now().Unix() //lint:allow detsource
}

func Naked() int64 {
	return time.Now().Unix()
}
