// Package counter exercises the atomicmix rule: once any access to a
// variable goes through sync/atomic, every access must.
package counter

import "sync/atomic"

type Hits struct {
	n     int64
	total int64
}

func (h *Hits) Inc() { atomic.AddInt64(&h.n, 1) }

// Load uses the atomic API consistently: fine.
func (h *Hits) Load() int64 { return atomic.LoadInt64(&h.n) }

func (h *Hits) Racy() int64 { return h.n } // want `field "n" is accessed with sync/atomic`

func (h *Hits) Reset() { h.n = 0 } // want `field "n" is accessed with sync/atomic`

// Total is only ever accessed plainly: fine.
func (h *Hits) Total() int64 { return h.total }

var ops uint64

func IncOps() { atomic.AddUint64(&ops, 1) }

func RacyOps() uint64 { return ops } // want `variable "ops" is accessed with sync/atomic`

// Typed wrappers make mixing impossible; nothing to flag.
type Typed struct{ n atomic.Int64 }

func (t *Typed) Inc() { t.n.Add(1) }

func (t *Typed) Load() int64 { return t.n.Load() }
