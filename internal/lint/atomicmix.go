package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags variables that are accessed through the sync/atomic
// function API in one place and plainly read or written in another.
// Mixing the two is a data race even when it "works": the plain access
// can tear, be reordered, or read a stale value. The repo's metrics,
// breaker, pool, and engine-ops counters all rely on every access going
// through the atomic API (or on the typed atomic.Int64-style wrappers,
// which make mixing impossible and are the preferred fix).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid plain reads/writes of any variable that is elsewhere " +
		"accessed via sync/atomic functions",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) {
	// Pass 1: collect every variable whose address is taken inside a
	// sync/atomic call, remembering one representative call site, and
	// the exact identifier nodes that constitute those sanctioned
	// atomic accesses.
	atomicVars := map[*types.Var]token.Pos{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p.Info, call)
			if callee == nil || pkgPathOf(callee) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				id := targetIdent(ast.Unparen(unary.X))
				if id == nil {
					continue
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other mention of those variables is a plain access.
	report := func(id *ast.Ident) {
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || sanctioned[id] {
			return
		}
		site, hot := atomicVars[v]
		if !hot {
			return
		}
		at := p.Fset.Position(site)
		p.Reportf(id.Pos(),
			"%s is accessed with sync/atomic at %s:%d but plainly here: this races; use the atomic API everywhere or migrate the field to a typed atomic (atomic.Int64 etc.)",
			describeVar(v), shortPath(at.Filename), at.Line)
	}
	var check func(n ast.Node) bool
	check = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			// Visit Sel exactly once here, then walk X on its own so
			// the embedded identifier is not reported twice.
			report(e.Sel)
			ast.Inspect(e.X, check)
			return false
		case *ast.Ident:
			report(e)
		}
		return true
	}
	for _, f := range p.Files {
		ast.Inspect(f, check)
	}
}

// targetIdent extracts the identifier naming the variable in an
// addressable expression: `x` or `s.f` (possibly chained selectors).
func targetIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

func describeVar(v *types.Var) string {
	if v.IsField() {
		return fmt.Sprintf("field %q", v.Name())
	}
	return fmt.Sprintf("variable %q", v.Name())
}
