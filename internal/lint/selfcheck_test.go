package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestModuleIsClean runs the full suite over the whole module — the
// same gate CI's lint job enforces through the sqllint binary — so a
// regression is caught by plain `go test ./...` even before CI.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	pkgs, err := lint.Load("repro/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags := lint.Analyze(pkgs, lint.Analyzers())
	for _, d := range diags {
		if !d.Allowed {
			t.Errorf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
		}
	}
}
