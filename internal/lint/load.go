package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// needs. Test files are deliberately excluded: the analyzers guard
// production invariants, and test helpers legitimately use wall clocks
// and environment variables.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Load expands the given `go list` patterns (e.g. "./..."), parses each
// matched package's non-test Go files, and type-checks them with the
// stdlib source importer. It is the only place the framework shells
// out; everything downstream is pure go/ast + go/types.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}

	fset := token.NewFileSet()
	// One shared source importer: it memoizes type-checked dependencies
	// (stdlib included) across all packages in the run.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		pkg, err := Check(lp.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check type-checks one parsed package and wraps it as a *Package. The
// module always compiles, so any type error is a tool failure, not a
// finding.
func Check(importPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	var terrs []error
	conf := &types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)", importPath, terrs[0], len(terrs)-1)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
