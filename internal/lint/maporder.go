package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags order-sensitive work inside `for range m` over a map
// in determinism-critical packages: appending to a slice that is never
// deterministically sorted afterwards, or writing directly to a sink
// (fmt printers, Write* methods, channel sends). Go randomizes map
// iteration order per run, so either is a build-to-build diff waiting
// to happen. Aggregations (sums, max), writes into other maps, and the
// collect-then-sort idiom are all fine.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid order-sensitive map iteration (append without a " +
		"subsequent sort, or direct sink writes) in determinism-critical packages",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	if !isDeterminismCritical(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFuncMapOrder(p, body)
			return true
		})
	}
}

// checkFuncMapOrder examines every map-range loop directly inside fn
// (nested function literals are visited on their own by the caller's
// Inspect, with their own literal body as the sort-search scope).
func checkFuncMapOrder(p *Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != fn.Pos() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, fn, rs)
		return true
	})
}

func checkMapRange(p *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	reported := map[types.Object]bool{}
	sinkReported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			if !sinkReported {
				sinkReported = true
				p.Reportf(rs.Pos(),
					"map iteration sends on a channel: map order is randomized per run; collect into a slice and sort first")
			}
			return true
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || i >= len(stmt.Lhs) {
					continue
				}
				obj := assignTarget(p.Info, stmt.Lhs[i])
				if obj == nil || reported[obj] {
					continue
				}
				if declaredWithin(obj, rs.Body) {
					continue
				}
				if sortedAfter(p, fn, rs, obj) {
					continue
				}
				reported[obj] = true
				p.Reportf(rs.Pos(),
					"map iteration appends to %q without a deterministic sort afterwards: map order is randomized per run, so %q's element order will differ build to build",
					obj.Name(), obj.Name())
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(p.Info, stmt); ok && !sinkReported {
				sinkReported = true
				p.Reportf(rs.Pos(),
					"map iteration writes to a sink via %s: map order is randomized per run; collect into a slice, sort, then emit",
					name)
				return false
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// assignTarget resolves an assignment LHS to the variable it writes:
// a plain identifier or a field selector. Index expressions and
// dereferences are out of scope.
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside the
// given node's source range (loop-local slices reset each iteration are
// not order-sensitive across the whole map).
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// sortedAfter reports whether, lexically after the range loop within
// the enclosing function body, some sort/slices call mentions obj.
func sortedAfter(p *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil {
			return true
		}
		switch pkgPathOf(callee) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				switch e := an.(type) {
				case *ast.Ident:
					if p.Info.Uses[e] == obj {
						found = true
					}
				case *ast.SelectorExpr:
					if p.Info.Uses[e.Sel] == obj {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sinkCall reports whether call writes loop data somewhere externally
// visible: the fmt print family (Sprint* is pure and exempt), any
// Write*-named method, or the print/println builtins.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
			return b.Name(), true
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return "", false
	}
	name := callee.Name()
	if pkgPathOf(callee) == "fmt" && strings.HasPrefix(name, "Print") || pkgPathOf(callee) == "fmt" && strings.HasPrefix(name, "Fprint") {
		return "fmt." + name, true
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && strings.HasPrefix(name, "Write") {
		return name, true
	}
	return "", false
}
