// Package semcheck implements the semantic analyzer used as the benchmark's
// ground-truth oracle. It resolves names and aliases against a catalog
// schema, infers expression types, and enforces aggregation rules, producing
// diagnostics classified into the paper's six syntax-error types:
// aggr-attr, aggr-having, nested-mismatch, condition-mismatch,
// alias-undefined, and alias-ambiguous.
package semcheck

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Code identifies a diagnostic class. The first six values are the paper's
// error taxonomy; the remainder cover generic resolution failures.
type Code string

// Diagnostic codes.
const (
	CodeParse             Code = "parse-error"
	CodeAggrAttr          Code = "aggr-attr"
	CodeAggrHaving        Code = "aggr-having"
	CodeNestedMismatch    Code = "nested-mismatch"
	CodeConditionMismatch Code = "condition-mismatch"
	CodeAliasUndefined    Code = "alias-undefined"
	CodeAliasAmbiguous    Code = "alias-ambiguous"
	CodeUnknownTable      Code = "unknown-table"
	CodeUnknownColumn     Code = "unknown-column"
)

// PaperErrorTypes lists the six error types studied in the paper, in the
// order used by its figures.
var PaperErrorTypes = []Code{
	CodeAggrAttr, CodeAggrHaving, CodeNestedMismatch,
	CodeConditionMismatch, CodeAliasUndefined, CodeAliasAmbiguous,
}

// Diagnostic is one semantic finding.
type Diagnostic struct {
	Code Code
	Msg  string
}

func (d Diagnostic) String() string { return fmt.Sprintf("%s: %s", d.Code, d.Msg) }

// Checker validates statements against a schema.
type Checker struct {
	Schema *catalog.Schema
}

// New returns a Checker for the schema.
func New(schema *catalog.Schema) *Checker { return &Checker{Schema: schema} }

// CheckSQL parses and checks a SQL string. A parse failure yields a single
// CodeParse diagnostic.
func (c *Checker) CheckSQL(sql string) []Diagnostic {
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return []Diagnostic{{Code: CodeParse, Msg: err.Error()}}
	}
	return c.Check(stmt)
}

// Check validates a parsed statement and returns all diagnostics found.
func (c *Checker) Check(stmt sqlast.Stmt) []Diagnostic {
	ck := &checkRun{schema: c.Schema}
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		ck.checkSelect(t, nil)
	case *sqlast.CreateTableStmt:
		if t.AsSelect != nil {
			ck.checkSelect(t.AsSelect, nil)
		}
	case *sqlast.CreateViewStmt:
		ck.checkSelect(t.Select, nil)
	case *sqlast.InsertStmt:
		if t.Select != nil {
			ck.checkSelect(t.Select, nil)
		}
	case *sqlast.UpdateStmt:
		sc := ck.scopeForTables(&sqlast.TableName{Name: t.Table, Alias: t.Alias})
		for _, a := range t.Set {
			ck.resolveExpr(a.Value, sc)
		}
		if t.Where != nil {
			ck.resolveExpr(t.Where, sc)
			ck.checkConditionTypes(t.Where, sc)
		}
	case *sqlast.DeleteStmt:
		sc := ck.scopeForTables(&sqlast.TableName{Name: t.Table})
		if t.Where != nil {
			ck.resolveExpr(t.Where, sc)
			ck.checkConditionTypes(t.Where, sc)
		}
	}
	return dedupe(ck.diags)
}

// Primary returns the highest-priority diagnostic code, or "" when the list
// is empty. Priority follows the paper's taxonomy: resolution errors beat
// type errors beat aggregation errors, mirroring how a human reviewer would
// report the root cause.
func Primary(diags []Diagnostic) Code {
	priority := []Code{
		CodeParse,
		CodeAliasUndefined, CodeAliasAmbiguous,
		CodeNestedMismatch, CodeConditionMismatch,
		CodeAggrHaving, CodeAggrAttr,
		CodeUnknownTable, CodeUnknownColumn,
	}
	for _, p := range priority {
		for _, d := range diags {
			if d.Code == p {
				return p
			}
		}
	}
	return ""
}

// HasPaperError reports whether any diagnostic belongs to the paper's
// six-type taxonomy.
func HasPaperError(diags []Diagnostic) bool {
	for _, d := range diags {
		for _, p := range PaperErrorTypes {
			if d.Code == p {
				return true
			}
		}
	}
	return false
}

func dedupe(diags []Diagnostic) []Diagnostic {
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		key := string(d.Code) + "\x00" + d.Msg
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Scope

type scopeTable struct {
	alias    string // lowercase binding name (explicit alias or bare table name)
	cols     []catalog.Column
	wildcard bool // unknown relation: any column resolves as TypeAny
}

type scope struct {
	parent *scope
	tables []scopeTable
	ctes   map[string][]catalog.Column // visible CTE definitions
}

func (s *scope) lookupQualifier(q string) (*scopeTable, bool) {
	lq := strings.ToLower(catalog.BareName(q))
	for sc := s; sc != nil; sc = sc.parent {
		for i := range sc.tables {
			if sc.tables[i].alias == lq {
				return &sc.tables[i], true
			}
		}
	}
	return nil, false
}

func (s *scope) cte(name string) ([]catalog.Column, bool) {
	ln := strings.ToLower(name)
	for sc := s; sc != nil; sc = sc.parent {
		if cols, ok := sc.ctes[ln]; ok {
			return cols, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Checking

type checkRun struct {
	schema *catalog.Schema
	diags  []Diagnostic
}

func (ck *checkRun) report(code Code, format string, args ...any) {
	ck.diags = append(ck.diags, Diagnostic{Code: code, Msg: fmt.Sprintf(format, args...)})
}

func (ck *checkRun) scopeForTables(refs ...sqlast.TableRef) *scope {
	sc := &scope{ctes: map[string][]catalog.Column{}}
	for _, r := range refs {
		ck.addRef(sc, r)
	}
	return sc
}

// checkSelect validates one SELECT (and, recursively, everything inside it)
// within the given parent scope.
func (ck *checkRun) checkSelect(sel *sqlast.SelectStmt, parent *scope) {
	sc := &scope{parent: parent, ctes: map[string][]catalog.Column{}}
	for _, cte := range sel.With {
		// CTE bodies see previously defined CTEs but not the outer FROM.
		ck.checkSelect(cte.Select, &scope{parent: parent, ctes: sc.ctes})
		cols := ck.outputColumns(cte.Select, sc)
		if len(cte.Columns) > 0 {
			named := make([]catalog.Column, len(cte.Columns))
			for i, name := range cte.Columns {
				typ := catalog.TypeAny
				if i < len(cols) {
					typ = cols[i].Type
				}
				named[i] = catalog.Column{Name: name, Type: typ}
			}
			cols = named
		}
		sc.ctes[strings.ToLower(cte.Name)] = cols
	}
	for _, ref := range sel.From {
		ck.addRef(sc, ref)
	}
	// Resolve references clause by clause.
	for _, item := range sel.Items {
		ck.resolveExpr(item.Expr, sc)
	}
	for _, ref := range sel.From {
		ck.resolveJoinConds(ref, sc)
	}
	if sel.Where != nil {
		ck.resolveExpr(sel.Where, sc)
		ck.checkConditionTypes(sel.Where, sc)
	}
	for _, e := range sel.GroupBy {
		ck.resolveExpr(e, sc)
	}
	if sel.Having != nil {
		ck.resolveExpr(sel.Having, sc)
		ck.checkConditionTypes(sel.Having, sc)
	}
	for _, o := range sel.OrderBy {
		ck.resolveOrderExpr(o.Expr, sel, sc)
	}
	ck.checkAggregation(sel, sc)
	ck.checkScalarSubqueries(sel, sc)
	if sel.SetOp != nil {
		ck.checkSelect(sel.SetOp.Right, parent)
	}
}

// addRef registers a FROM entry in the scope and recursively checks derived
// tables.
func (ck *checkRun) addRef(sc *scope, ref sqlast.TableRef) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		binding := t.Alias
		if binding == "" {
			binding = catalog.BareName(t.Name)
		}
		st := scopeTable{alias: strings.ToLower(binding)}
		if cols, ok := sc.cte(catalog.BareName(t.Name)); ok {
			st.cols = cols
			if len(cols) == 0 {
				st.wildcard = true
			}
		} else if tab, ok := ck.schema.Table(t.Name); ok {
			st.cols = tab.Columns
		} else {
			ck.report(CodeUnknownTable, "unknown table %q", t.Name)
			st.wildcard = true
		}
		sc.tables = append(sc.tables, st)
	case *sqlast.SubqueryTable:
		ck.checkSelect(t.Select, sc.parent)
		binding := t.Alias
		if binding == "" {
			binding = "?derived"
		}
		cols := ck.outputColumns(t.Select, sc)
		st := scopeTable{alias: strings.ToLower(binding), cols: cols}
		if len(cols) == 0 {
			st.wildcard = true
		}
		sc.tables = append(sc.tables, st)
	case *sqlast.Join:
		ck.addRef(sc, t.Left)
		ck.addRef(sc, t.Right)
	}
}

// resolveJoinConds resolves and type-checks ON conditions once the whole
// FROM scope is built.
func (ck *checkRun) resolveJoinConds(ref sqlast.TableRef, sc *scope) {
	j, ok := ref.(*sqlast.Join)
	if !ok {
		return
	}
	ck.resolveJoinConds(j.Left, sc)
	ck.resolveJoinConds(j.Right, sc)
	if j.On != nil {
		ck.resolveExpr(j.On, sc)
		ck.checkConditionTypes(j.On, sc)
	}
}

// outputColumns derives the output column list of a SELECT for scope
// purposes; an empty result means the columns are unknown (e.g. SELECT *
// over an unknown table).
func (ck *checkRun) outputColumns(sel *sqlast.SelectStmt, sc *scope) []catalog.Column {
	inner := &scope{parent: sc, ctes: map[string][]catalog.Column{}}
	for _, cte := range sel.With {
		inner.ctes[strings.ToLower(cte.Name)] = nil
	}
	for _, ref := range sel.From {
		ck.collectRefColumns(inner, ref)
	}
	var out []catalog.Column
	for _, item := range sel.Items {
		switch e := item.Expr.(type) {
		case *sqlast.Star:
			for _, st := range inner.tables {
				if e.Table == "" || st.alias == strings.ToLower(e.Table) {
					if st.wildcard {
						return nil
					}
					out = append(out, st.cols...)
				}
			}
		case *sqlast.ColumnRef:
			name := item.Alias
			if name == "" {
				name = e.Name
			}
			out = append(out, catalog.Column{Name: name, Type: ck.inferType(item.Expr, inner)})
		default:
			name := item.Alias
			if name == "" {
				name = "expr"
			}
			out = append(out, catalog.Column{Name: name, Type: ck.inferType(item.Expr, inner)})
		}
	}
	return out
}

// collectRefColumns is addRef without diagnostics, used when deriving output
// columns (the real addRef will run during checkSelect and report problems).
func (ck *checkRun) collectRefColumns(sc *scope, ref sqlast.TableRef) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		binding := t.Alias
		if binding == "" {
			binding = catalog.BareName(t.Name)
		}
		st := scopeTable{alias: strings.ToLower(binding)}
		if cols, ok := sc.cte(catalog.BareName(t.Name)); ok {
			st.cols = cols
			st.wildcard = len(cols) == 0
		} else if tab, ok := ck.schema.Table(t.Name); ok {
			st.cols = tab.Columns
		} else {
			st.wildcard = true
		}
		sc.tables = append(sc.tables, st)
	case *sqlast.SubqueryTable:
		binding := t.Alias
		if binding == "" {
			binding = "?derived"
		}
		cols := ck.outputColumns(t.Select, sc.parent)
		sc.tables = append(sc.tables, scopeTable{alias: strings.ToLower(binding), cols: cols, wildcard: len(cols) == 0})
	case *sqlast.Join:
		ck.collectRefColumns(sc, t.Left)
		ck.collectRefColumns(sc, t.Right)
	}
}

// resolveExpr walks an expression resolving every column reference, checking
// subqueries recursively. Subqueries see the current scope as parent
// (correlation is allowed).
func (ck *checkRun) resolveExpr(e sqlast.Expr, sc *scope) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *sqlast.ColumnRef:
		ck.resolveColumn(t, sc)
	case *sqlast.Star:
		if t.Table != "" {
			if _, ok := sc.lookupQualifier(t.Table); !ok {
				ck.report(CodeAliasUndefined, "alias %q is not defined", t.Table)
			}
		}
	case *sqlast.Binary:
		ck.resolveExpr(t.L, sc)
		ck.resolveExpr(t.R, sc)
	case *sqlast.Unary:
		ck.resolveExpr(t.X, sc)
	case *sqlast.FuncCall:
		for _, a := range t.Args {
			ck.resolveExpr(a, sc)
		}
	case *sqlast.Subquery:
		ck.checkSelect(t.Select, sc)
	case *sqlast.In:
		ck.resolveExpr(t.X, sc)
		for _, a := range t.List {
			ck.resolveExpr(a, sc)
		}
		if t.Sub != nil {
			ck.checkSelect(t.Sub, sc)
		}
	case *sqlast.Exists:
		ck.checkSelect(t.Sub, sc)
	case *sqlast.Between:
		ck.resolveExpr(t.X, sc)
		ck.resolveExpr(t.Lo, sc)
		ck.resolveExpr(t.Hi, sc)
	case *sqlast.IsNull:
		ck.resolveExpr(t.X, sc)
	case *sqlast.Case:
		ck.resolveExpr(t.Operand, sc)
		for _, w := range t.Whens {
			ck.resolveExpr(w.Cond, sc)
			ck.resolveExpr(w.Result, sc)
		}
		ck.resolveExpr(t.Else, sc)
	case *sqlast.Cast:
		ck.resolveExpr(t.X, sc)
	}
}

// resolveOrderExpr allows ORDER BY to reference projection aliases in
// addition to scope columns.
func (ck *checkRun) resolveOrderExpr(e sqlast.Expr, sel *sqlast.SelectStmt, sc *scope) {
	if cr, ok := e.(*sqlast.ColumnRef); ok && cr.Table == "" {
		for _, item := range sel.Items {
			if strings.EqualFold(item.Alias, cr.Name) {
				return
			}
		}
	}
	ck.resolveExpr(e, sc)
}

func (ck *checkRun) resolveColumn(cr *sqlast.ColumnRef, sc *scope) {
	if cr.Table != "" {
		st, ok := sc.lookupQualifier(cr.Table)
		if !ok {
			ck.report(CodeAliasUndefined, "alias %q is not defined", cr.Table)
			return
		}
		if st.wildcard {
			return
		}
		for _, c := range st.cols {
			if strings.EqualFold(c.Name, cr.Name) {
				return
			}
		}
		ck.report(CodeUnknownColumn, "column %q not found in %q", cr.Name, cr.Table)
		return
	}
	// Unqualified: search each scope level; ambiguity applies within a level.
	for level := sc; level != nil; level = level.parent {
		matches := 0
		wildcard := false
		for _, st := range level.tables {
			if st.wildcard {
				wildcard = true
				continue
			}
			for _, c := range st.cols {
				if strings.EqualFold(c.Name, cr.Name) {
					matches++
					break
				}
			}
		}
		if matches > 1 {
			ck.report(CodeAliasAmbiguous, "column %q is ambiguous: present in multiple tables", cr.Name)
			return
		}
		if matches == 1 || wildcard {
			return
		}
	}
	ck.report(CodeUnknownColumn, "column %q not found in any table in scope", cr.Name)
}

// lookupType resolves the type of a column reference without reporting.
func (ck *checkRun) lookupType(cr *sqlast.ColumnRef, sc *scope) catalog.Type {
	if cr.Table != "" {
		if st, ok := sc.lookupQualifier(cr.Table); ok {
			for _, c := range st.cols {
				if strings.EqualFold(c.Name, cr.Name) {
					return c.Type
				}
			}
		}
		return catalog.TypeAny
	}
	for level := sc; level != nil; level = level.parent {
		for _, st := range level.tables {
			for _, c := range st.cols {
				if strings.EqualFold(c.Name, cr.Name) {
					return c.Type
				}
			}
		}
	}
	return catalog.TypeAny
}

// inferType computes the static type of an expression, TypeAny when unknown.
func (ck *checkRun) inferType(e sqlast.Expr, sc *scope) catalog.Type {
	switch t := e.(type) {
	case *sqlast.ColumnRef:
		return ck.lookupType(t, sc)
	case *sqlast.Literal:
		switch t.Kind {
		case sqlast.LitNumber:
			if strings.ContainsAny(t.Text, ".eE") {
				return catalog.TypeFloat
			}
			return catalog.TypeInt
		case sqlast.LitString:
			return catalog.TypeText
		case sqlast.LitBool:
			return catalog.TypeBool
		default:
			return catalog.TypeAny
		}
	case *sqlast.Binary:
		switch t.Op {
		case "+", "-", "*", "/", "%":
			lt, rt := ck.inferType(t.L, sc), ck.inferType(t.R, sc)
			if lt == catalog.TypeFloat || rt == catalog.TypeFloat {
				return catalog.TypeFloat
			}
			if lt == catalog.TypeInt && rt == catalog.TypeInt {
				return catalog.TypeInt
			}
			return catalog.TypeAny
		case "||":
			return catalog.TypeText
		default:
			return catalog.TypeBool
		}
	case *sqlast.Unary:
		if t.Op == "NOT" {
			return catalog.TypeBool
		}
		return ck.inferType(t.X, sc)
	case *sqlast.FuncCall:
		switch strings.ToUpper(t.Name) {
		case "COUNT":
			return catalog.TypeInt
		case "AVG", "SUM", "STDEV", "VAR":
			return catalog.TypeFloat
		case "MIN", "MAX":
			if len(t.Args) == 1 {
				return ck.inferType(t.Args[0], sc)
			}
			return catalog.TypeAny
		case "UPPER", "LOWER", "SUBSTRING", "CONCAT", "TRIM", "LTRIM", "RTRIM", "STR":
			return catalog.TypeText
		case "ABS", "ROUND", "FLOOR", "CEILING", "SQRT", "POWER", "LOG", "EXP":
			return catalog.TypeFloat
		case "LEN", "DATALENGTH", "CHARINDEX":
			return catalog.TypeInt
		default:
			return catalog.TypeAny
		}
	case *sqlast.Subquery:
		if len(t.Select.Items) == 1 {
			inner := &scope{parent: sc, ctes: map[string][]catalog.Column{}}
			for _, ref := range t.Select.From {
				ck.collectRefColumns(inner, ref)
			}
			return ck.inferType(t.Select.Items[0].Expr, inner)
		}
		return catalog.TypeAny
	case *sqlast.Case:
		if len(t.Whens) > 0 {
			return ck.inferType(t.Whens[0].Result, sc)
		}
		return catalog.TypeAny
	case *sqlast.Cast:
		u := strings.ToUpper(t.Type)
		switch {
		case strings.HasPrefix(u, "INT") || strings.HasPrefix(u, "BIGINT") || strings.HasPrefix(u, "SMALLINT"):
			return catalog.TypeInt
		case strings.HasPrefix(u, "FLOAT") || strings.HasPrefix(u, "REAL") || strings.HasPrefix(u, "DECIMAL") || strings.HasPrefix(u, "NUMERIC"):
			return catalog.TypeFloat
		case strings.HasPrefix(u, "VARCHAR") || strings.HasPrefix(u, "CHAR") || strings.HasPrefix(u, "TEXT") || strings.HasPrefix(u, "NVARCHAR"):
			return catalog.TypeText
		default:
			return catalog.TypeAny
		}
	default:
		return catalog.TypeAny
	}
}

// checkConditionTypes reports condition-mismatch for comparisons between
// incompatible types anywhere in the boolean expression (without descending
// into subqueries, which are checked separately).
func (ck *checkRun) checkConditionTypes(e sqlast.Expr, sc *scope) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *sqlast.Binary:
		switch t.Op {
		case "AND", "OR":
			ck.checkConditionTypes(t.L, sc)
			ck.checkConditionTypes(t.R, sc)
		case "=", "<>", "<", ">", "<=", ">=":
			lt := ck.inferType(t.L, sc)
			rt := ck.inferType(t.R, sc)
			if !catalog.Comparable(lt, rt) {
				ck.report(CodeConditionMismatch,
					"comparison %s between incompatible types %s and %s",
					sqlast.PrintExpr(t), lt, rt)
			}
		case "LIKE":
			lt := ck.inferType(t.L, sc)
			if lt != catalog.TypeAny && lt != catalog.TypeText {
				ck.report(CodeConditionMismatch, "LIKE on non-text operand of type %s", lt)
			}
		}
	case *sqlast.Unary:
		ck.checkConditionTypes(t.X, sc)
	case *sqlast.In:
		xt := ck.inferType(t.X, sc)
		for _, item := range t.List {
			it := ck.inferType(item, sc)
			if !catalog.Comparable(xt, it) {
				ck.report(CodeConditionMismatch,
					"IN list item %s has type %s, incompatible with %s",
					sqlast.PrintExpr(item), it, xt)
			}
		}
	case *sqlast.Between:
		xt := ck.inferType(t.X, sc)
		for _, bound := range []sqlast.Expr{t.Lo, t.Hi} {
			bt := ck.inferType(bound, sc)
			if !catalog.Comparable(xt, bt) {
				ck.report(CodeConditionMismatch,
					"BETWEEN bound %s has type %s, incompatible with %s",
					sqlast.PrintExpr(bound), bt, xt)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Aggregation rules

// checkAggregation enforces the GROUP BY / HAVING rules that define the
// aggr-attr and aggr-having error types.
func (ck *checkRun) checkAggregation(sel *sqlast.SelectStmt, sc *scope) {
	hasAgg := false
	for _, item := range sel.Items {
		if containsAggregate(item.Expr) {
			hasAgg = true
			break
		}
	}
	grouped := make(map[string]bool, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		grouped[strings.ToLower(sqlast.PrintExpr(g))] = true
	}
	if hasAgg || len(sel.GroupBy) > 0 {
		for _, item := range sel.Items {
			for _, cr := range bareColumns(item.Expr) {
				key := strings.ToLower(sqlast.PrintExpr(cr))
				bare := strings.ToLower(cr.Name)
				if !grouped[key] && !grouped[bare] {
					ck.report(CodeAggrAttr,
						"column %s appears in SELECT with aggregates but not in GROUP BY",
						sqlast.PrintExpr(cr))
				}
			}
			if _, ok := item.Expr.(*sqlast.Star); ok && hasAgg {
				ck.report(CodeAggrAttr, "* appears in SELECT alongside aggregate functions")
			}
		}
	}
	if sel.Having != nil {
		if len(sel.GroupBy) == 0 && !hasAgg && !containsAggregate(sel.Having) {
			ck.report(CodeAggrHaving, "HAVING used without GROUP BY or aggregates; use WHERE")
		}
		for _, cr := range bareColumns(sel.Having) {
			key := strings.ToLower(sqlast.PrintExpr(cr))
			bare := strings.ToLower(cr.Name)
			if !grouped[key] && !grouped[bare] {
				ck.report(CodeAggrHaving,
					"HAVING filters non-aggregated column %s; use WHERE or GROUP BY it",
					sqlast.PrintExpr(cr))
			}
		}
	}
}

// containsAggregate reports whether e contains an aggregate call, without
// descending into subqueries.
func containsAggregate(e sqlast.Expr) bool {
	found := false
	walkShallow(e, func(x sqlast.Expr) bool {
		if fc, ok := x.(*sqlast.FuncCall); ok && sqlast.IsAggregate(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// bareColumns returns column references in e that are not inside aggregate
// calls (and not inside subqueries).
func bareColumns(e sqlast.Expr) []*sqlast.ColumnRef {
	var out []*sqlast.ColumnRef
	walkShallow(e, func(x sqlast.Expr) bool {
		switch t := x.(type) {
		case *sqlast.FuncCall:
			if sqlast.IsAggregate(t.Name) {
				return false // columns inside aggregates are fine
			}
		case *sqlast.ColumnRef:
			out = append(out, t)
		}
		return true
	})
	return out
}

// walkShallow visits expression nodes without entering subqueries.
func walkShallow(e sqlast.Expr, f func(sqlast.Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch t := e.(type) {
	case *sqlast.Binary:
		walkShallow(t.L, f)
		walkShallow(t.R, f)
	case *sqlast.Unary:
		walkShallow(t.X, f)
	case *sqlast.FuncCall:
		for _, a := range t.Args {
			walkShallow(a, f)
		}
	case *sqlast.In:
		walkShallow(t.X, f)
		for _, a := range t.List {
			walkShallow(a, f)
		}
	case *sqlast.Between:
		walkShallow(t.X, f)
		walkShallow(t.Lo, f)
		walkShallow(t.Hi, f)
	case *sqlast.IsNull:
		walkShallow(t.X, f)
	case *sqlast.Case:
		walkShallow(t.Operand, f)
		for _, w := range t.Whens {
			walkShallow(w.Cond, f)
			walkShallow(w.Result, f)
		}
		walkShallow(t.Else, f)
	case *sqlast.Cast:
		walkShallow(t.X, f)
	}
}

// ---------------------------------------------------------------------------
// Scalar subquery cardinality (nested-mismatch)

// checkScalarSubqueries reports nested-mismatch when a subquery used as a
// scalar comparand is not guaranteed to return a single row and column.
func (ck *checkRun) checkScalarSubqueries(sel *sqlast.SelectStmt, _ *scope) {
	var exprs []sqlast.Expr
	if sel.Where != nil {
		exprs = append(exprs, sel.Where)
	}
	if sel.Having != nil {
		exprs = append(exprs, sel.Having)
	}
	collectJoinOns(sel.From, &exprs)
	for _, e := range exprs {
		ck.findScalarSubqueryMisuse(e)
	}
}

func collectJoinOns(refs []sqlast.TableRef, out *[]sqlast.Expr) {
	for _, r := range refs {
		if j, ok := r.(*sqlast.Join); ok {
			if j.On != nil {
				*out = append(*out, j.On)
			}
			collectJoinOns([]sqlast.TableRef{j.Left, j.Right}, out)
		}
	}
}

func (ck *checkRun) findScalarSubqueryMisuse(e sqlast.Expr) {
	walkShallow(e, func(x sqlast.Expr) bool {
		bin, ok := x.(*sqlast.Binary)
		if !ok {
			return true
		}
		switch bin.Op {
		case "=", "<>", "<", ">", "<=", ">=":
			for _, side := range []sqlast.Expr{bin.L, bin.R} {
				if sub, ok := side.(*sqlast.Subquery); ok {
					if !guaranteedScalar(sub.Select) {
						ck.report(CodeNestedMismatch,
							"subquery %s may return multiple rows but is compared as a scalar",
							sqlast.PrintExpr(sub))
					}
				}
			}
		}
		return true
	})
}

// guaranteedScalar reports whether a SELECT always yields at most one row
// and exactly one column: single-column projection, and either a plain
// aggregate (no GROUP BY) or TOP 1 / LIMIT 1.
func guaranteedScalar(sel *sqlast.SelectStmt) bool {
	if len(sel.Items) != 1 || sel.SetOp != nil {
		return false
	}
	if (sel.Top != nil && *sel.Top == 1) || (sel.Limit != nil && *sel.Limit == 1) {
		return true
	}
	return containsAggregate(sel.Items[0].Expr) && len(sel.GroupBy) == 0
}
