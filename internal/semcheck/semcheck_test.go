package semcheck

import (
	"testing"

	"repro/internal/catalog"
)

func sdssChecker() *Checker { return New(catalog.SDSS()) }

func hasCode(diags []Diagnostic, code Code) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// The paper's Listing 1: each query must trigger exactly its labelled error
// type as the primary diagnostic.
func TestPaperListing1ErrorTypes(t *testing.T) {
	c := sdssChecker()
	cases := []struct {
		sql  string
		want Code
	}{
		{"SELECT plate , mjd , COUNT(*) , AVG( z ) FROM SpecObj WHERE z > 0.5", CodeAggrAttr},
		{"SELECT plate , COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5", CodeAggrHaving},
		{"SELECT p.ra , p.dec , s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = ( SELECT bestobjid FROM SpecObj )", CodeNestedMismatch},
		{"SELECT plate , mjd , fiberid FROM SpecObj WHERE z = 'high'", CodeConditionMismatch},
		{"SELECT s.plate , s.mjd , z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid", CodeAliasUndefined},
		{"SELECT s.plate , s.z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE ra > 180", CodeAliasAmbiguous},
	}
	for _, tc := range cases {
		diags := c.CheckSQL(tc.sql)
		if !hasCode(diags, tc.want) {
			t.Errorf("CheckSQL(%q):\n got %v\nwant code %s", tc.sql, diags, tc.want)
		}
		if got := Primary(diags); got != tc.want {
			t.Errorf("Primary(%q) = %s, want %s (all: %v)", tc.sql, got, tc.want, diags)
		}
	}
}

func TestCleanQueriesProduceNoDiagnostics(t *testing.T) {
	c := sdssChecker()
	for _, sql := range []string{
		"SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
		"SELECT s.plate , COUNT(*) AS n FROM SpecObj AS s GROUP BY s.plate HAVING COUNT(*) > 5",
		"SELECT p.ra , p.dec FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = p.objid",
		"SELECT plate FROM SpecObj WHERE bestobjid = ( SELECT MAX( objid ) FROM PhotoObj )",
		"SELECT plate FROM SpecObj WHERE plate IN ( SELECT plate FROM PlateX )",
		"SELECT s.ra FROM SpecObj AS s WHERE EXISTS ( SELECT 1 FROM PhotoObj AS p WHERE p.objid = s.bestobjid )",
		"WITH hz AS ( SELECT plate , z FROM SpecObj WHERE z > 1 ) SELECT plate FROM hz WHERE z < 2",
		"SELECT class , AVG( z ) FROM SpecObj GROUP BY class",
		"SELECT * FROM SpecObj",
		"SELECT plate + 1 , mjd * 2 FROM SpecObj",
		"SELECT plate FROM SpecObj WHERE class = 'GALAXY'",
		"SELECT plate FROM SpecObj WHERE z BETWEEN 0.1 AND 0.5",
		"SELECT plate FROM SpecObj ORDER BY z DESC LIMIT 10",
		"SELECT COUNT(*) FROM SpecObj",
		"SELECT plate , COUNT(*) AS n FROM SpecObj GROUP BY plate ORDER BY n DESC",
	} {
		if diags := c.CheckSQL(sql); len(diags) != 0 {
			t.Errorf("CheckSQL(%q) = %v, want clean", sql, diags)
		}
	}
}

func TestParseErrorDiagnostic(t *testing.T) {
	diags := sdssChecker().CheckSQL("SELECT FROM WHERE")
	if len(diags) != 1 || diags[0].Code != CodeParse {
		t.Errorf("diags = %v, want single parse-error", diags)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	c := sdssChecker()
	if diags := c.CheckSQL("SELECT x FROM NoSuchTable"); !hasCode(diags, CodeUnknownTable) {
		t.Errorf("missing unknown-table: %v", diags)
	}
	if diags := c.CheckSQL("SELECT nosuchcol FROM SpecObj"); !hasCode(diags, CodeUnknownColumn) {
		t.Errorf("missing unknown-column: %v", diags)
	}
	// Columns of unknown tables resolve silently (wildcard scope).
	diags := c.CheckSQL("SELECT anything FROM NoSuchTable WHERE other > 1")
	if hasCode(diags, CodeUnknownColumn) {
		t.Errorf("wildcard scope should swallow column lookups: %v", diags)
	}
}

func TestAliasResolution(t *testing.T) {
	c := sdssChecker()
	// Alias shadows the table name.
	diags := c.CheckSQL("SELECT specobj.plate FROM SpecObj AS s")
	if !hasCode(diags, CodeAliasUndefined) {
		t.Errorf("aliased table name should be unusable: %v", diags)
	}
	// Bare table name works when no alias is given.
	if diags := c.CheckSQL("SELECT specobj.plate FROM SpecObj"); len(diags) != 0 {
		t.Errorf("bare table qualifier should resolve: %v", diags)
	}
	// Qualified star with undefined alias.
	if diags := c.CheckSQL("SELECT q.* FROM SpecObj AS s"); !hasCode(diags, CodeAliasUndefined) {
		t.Errorf("q.* should be undefined: %v", diags)
	}
}

func TestAmbiguousColumns(t *testing.T) {
	c := sdssChecker()
	// ra exists in both SpecObj and PhotoObj.
	diags := c.CheckSQL("SELECT ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
	if !hasCode(diags, CodeAliasAmbiguous) {
		t.Errorf("unqualified ra should be ambiguous: %v", diags)
	}
	// Qualified access is fine.
	diags = c.CheckSQL("SELECT s.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
	if hasCode(diags, CodeAliasAmbiguous) {
		t.Errorf("qualified ra must not be ambiguous: %v", diags)
	}
	// plate exists only in SpecObj/PlateX; with PhotoObj join it is unique.
	diags = c.CheckSQL("SELECT plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
	if hasCode(diags, CodeAliasAmbiguous) {
		t.Errorf("plate should be unambiguous: %v", diags)
	}
}

func TestConditionMismatchVariants(t *testing.T) {
	c := sdssChecker()
	bad := []string{
		"SELECT plate FROM SpecObj WHERE z = 'high'",
		"SELECT plate FROM SpecObj WHERE class > 5",
		"SELECT plate FROM SpecObj WHERE plate IN ( 'a' , 'b' )",
		"SELECT plate FROM SpecObj WHERE z BETWEEN 'low' AND 'high'",
		"SELECT plate FROM SpecObj WHERE z LIKE '%x%'",
	}
	for _, sql := range bad {
		if diags := c.CheckSQL(sql); !hasCode(diags, CodeConditionMismatch) {
			t.Errorf("CheckSQL(%q) = %v, want condition-mismatch", sql, diags)
		}
	}
	good := []string{
		"SELECT plate FROM SpecObj WHERE class = 'GALAXY'",
		"SELECT plate FROM SpecObj WHERE z = 1",
		"SELECT plate FROM SpecObj WHERE plate = 2.5", // int vs float is fine
		"SELECT plate FROM SpecObj WHERE class LIKE 'GAL%'",
	}
	for _, sql := range good {
		if diags := c.CheckSQL(sql); hasCode(diags, CodeConditionMismatch) {
			t.Errorf("CheckSQL(%q) = %v, want no condition-mismatch", sql, diags)
		}
	}
}

func TestNestedMismatchVariants(t *testing.T) {
	c := sdssChecker()
	bad := []string{
		"SELECT plate FROM SpecObj WHERE bestobjid = ( SELECT objid FROM PhotoObj )",
		"SELECT plate FROM SpecObj WHERE z > ( SELECT z FROM SpecObj WHERE plate > 100 )",
	}
	for _, sql := range bad {
		if diags := c.CheckSQL(sql); !hasCode(diags, CodeNestedMismatch) {
			t.Errorf("CheckSQL(%q) = %v, want nested-mismatch", sql, diags)
		}
	}
	good := []string{
		"SELECT plate FROM SpecObj WHERE bestobjid = ( SELECT MAX( objid ) FROM PhotoObj )",
		"SELECT plate FROM SpecObj WHERE bestobjid = ( SELECT objid FROM PhotoObj ORDER BY objid ASC LIMIT 1 )",
		"SELECT plate FROM SpecObj WHERE bestobjid IN ( SELECT objid FROM PhotoObj )",
	}
	for _, sql := range good {
		if diags := c.CheckSQL(sql); hasCode(diags, CodeNestedMismatch) {
			t.Errorf("CheckSQL(%q) = %v, want no nested-mismatch", sql, diags)
		}
	}
}

func TestAggrAttrVariants(t *testing.T) {
	c := sdssChecker()
	// Missing GROUP BY entirely.
	if diags := c.CheckSQL("SELECT plate , COUNT(*) FROM SpecObj"); !hasCode(diags, CodeAggrAttr) {
		t.Errorf("want aggr-attr: %v", diags)
	}
	// GROUP BY covers only one of two bare columns.
	diags := c.CheckSQL("SELECT plate , mjd , COUNT(*) FROM SpecObj GROUP BY plate")
	if !hasCode(diags, CodeAggrAttr) {
		t.Errorf("want aggr-attr for mjd: %v", diags)
	}
	// Star with aggregate.
	if diags := c.CheckSQL("SELECT * , COUNT(*) FROM SpecObj"); !hasCode(diags, CodeAggrAttr) {
		t.Errorf("want aggr-attr for star: %v", diags)
	}
	// Qualified group-by column used bare in select is accepted.
	diags = c.CheckSQL("SELECT s.plate , COUNT(*) FROM SpecObj AS s GROUP BY plate")
	if hasCode(diags, CodeAggrAttr) {
		t.Errorf("bare/qualified group-by matching failed: %v", diags)
	}
}

func TestAggrHavingVariants(t *testing.T) {
	c := sdssChecker()
	// HAVING on non-grouped column.
	diags := c.CheckSQL("SELECT plate , COUNT(*) FROM SpecObj GROUP BY plate HAVING z > 0.5")
	if !hasCode(diags, CodeAggrHaving) {
		t.Errorf("want aggr-having: %v", diags)
	}
	// HAVING without GROUP BY or aggregate.
	diags = c.CheckSQL("SELECT plate FROM SpecObj HAVING plate > 5")
	if !hasCode(diags, CodeAggrHaving) {
		t.Errorf("want aggr-having (no group by): %v", diags)
	}
	// Legitimate HAVING forms.
	for _, sql := range []string{
		"SELECT plate , COUNT(*) FROM SpecObj GROUP BY plate HAVING COUNT(*) > 5",
		"SELECT plate , AVG( z ) FROM SpecObj GROUP BY plate HAVING AVG( z ) > 0.5",
		"SELECT plate , COUNT(*) FROM SpecObj GROUP BY plate HAVING plate > 100",
	} {
		if diags := c.CheckSQL(sql); hasCode(diags, CodeAggrHaving) {
			t.Errorf("CheckSQL(%q) = %v, want no aggr-having", sql, diags)
		}
	}
}

func TestCorrelatedSubqueryScoping(t *testing.T) {
	c := sdssChecker()
	// Outer alias s visible inside the subquery.
	sql := "SELECT s.plate FROM SpecObj AS s WHERE EXISTS ( SELECT 1 FROM PhotoObj AS p WHERE p.objid = s.bestobjid )"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("correlated reference failed: %v", diags)
	}
	// Inner alias not visible outside.
	sql = "SELECT p.objid FROM SpecObj AS s WHERE EXISTS ( SELECT 1 FROM PhotoObj AS p )"
	if diags := c.CheckSQL(sql); !hasCode(diags, CodeAliasUndefined) {
		t.Errorf("inner alias leaked: %v", diags)
	}
}

func TestCTEScoping(t *testing.T) {
	c := sdssChecker()
	// CTE columns resolve.
	sql := "WITH hz AS ( SELECT plate , z FROM SpecObj ) SELECT plate FROM hz WHERE z > 1"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("cte resolution failed: %v", diags)
	}
	// Column not exported by the CTE.
	sql = "WITH hz AS ( SELECT plate FROM SpecObj ) SELECT mjd FROM hz"
	if diags := c.CheckSQL(sql); !hasCode(diags, CodeUnknownColumn) {
		t.Errorf("cte should not export mjd: %v", diags)
	}
	// Later CTE sees earlier one.
	sql = "WITH a AS ( SELECT plate FROM SpecObj ) , b AS ( SELECT plate FROM a ) SELECT plate FROM b"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("chained cte failed: %v", diags)
	}
	// Explicit CTE column list renames.
	sql = "WITH c ( p ) AS ( SELECT plate FROM SpecObj ) SELECT p FROM c"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("cte column list failed: %v", diags)
	}
}

func TestDerivedTableScoping(t *testing.T) {
	c := sdssChecker()
	sql := "SELECT sub.plate FROM ( SELECT plate FROM SpecObj ) AS sub"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("derived table failed: %v", diags)
	}
	sql = "SELECT sub.z FROM ( SELECT plate FROM SpecObj ) AS sub"
	if diags := c.CheckSQL(sql); !hasCode(diags, CodeUnknownColumn) {
		t.Errorf("derived table should not export z: %v", diags)
	}
	// Star expansion through derived table.
	sql = "SELECT sub.mjd FROM ( SELECT * FROM SpecObj ) AS sub"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("star derived table failed: %v", diags)
	}
}

func TestOrderByAlias(t *testing.T) {
	c := sdssChecker()
	sql := "SELECT plate , COUNT(*) AS n FROM SpecObj GROUP BY plate ORDER BY n DESC"
	if diags := c.CheckSQL(sql); len(diags) != 0 {
		t.Errorf("order-by alias failed: %v", diags)
	}
}

func TestSetOpsBothSidesChecked(t *testing.T) {
	c := sdssChecker()
	sql := "SELECT plate FROM SpecObj UNION SELECT nosuch FROM SpecObj"
	if diags := c.CheckSQL(sql); !hasCode(diags, CodeUnknownColumn) {
		t.Errorf("set-op right side unchecked: %v", diags)
	}
}

func TestNonSelectStatements(t *testing.T) {
	c := sdssChecker()
	if diags := c.CheckSQL("UPDATE SpecObj SET z = 'x' WHERE plate = 1"); !hasCode(diags, CodeConditionMismatch) {
		// z = 'x' is an assignment, not a comparison; the WHERE is fine. The
		// mismatch check applies only to WHERE, so expect clean instead.
		if len(diags) != 0 {
			t.Errorf("update diagnostics = %v", diags)
		}
	}
	if diags := c.CheckSQL("DELETE FROM SpecObj WHERE z = 'high'"); !hasCode(diags, CodeConditionMismatch) {
		t.Errorf("delete where mismatch undetected: %v", diags)
	}
	if diags := c.CheckSQL("DECLARE @x INT"); len(diags) != 0 {
		t.Errorf("declare should be clean: %v", diags)
	}
	if diags := c.CheckSQL("CREATE VIEW v AS SELECT nosuch FROM SpecObj"); !hasCode(diags, CodeUnknownColumn) {
		t.Errorf("create view body unchecked: %v", diags)
	}
}

func TestPrimaryOrdering(t *testing.T) {
	diags := []Diagnostic{
		{Code: CodeAggrAttr},
		{Code: CodeAliasUndefined},
	}
	if got := Primary(diags); got != CodeAliasUndefined {
		t.Errorf("Primary = %s, want alias-undefined", got)
	}
	if Primary(nil) != "" {
		t.Error("Primary(nil) should be empty")
	}
}

func TestHasPaperError(t *testing.T) {
	if HasPaperError([]Diagnostic{{Code: CodeUnknownTable}}) {
		t.Error("unknown-table is not a paper error type")
	}
	if !HasPaperError([]Diagnostic{{Code: CodeAggrHaving}}) {
		t.Error("aggr-having is a paper error type")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: CodeAggrAttr, Msg: "x"}
	if d.String() != "aggr-attr: x" {
		t.Errorf("String = %q", d.String())
	}
}
