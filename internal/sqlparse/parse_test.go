package sqlparse

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sqlast"
)

// roundTrip parses sql, prints it, reparses, and reprints, asserting the
// printed form is a fixpoint.
func roundTrip(t *testing.T, sql string) string {
	t.Helper()
	stmt, err := ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	printed := sqlast.Print(stmt)
	stmt2, err := ParseStatement(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	printed2 := sqlast.Print(stmt2)
	if printed != printed2 {
		t.Fatalf("print not a fixpoint:\n first: %s\nsecond: %s", printed, printed2)
	}
	return printed
}

func TestParseSimpleSelect(t *testing.T) {
	sel, err := ParseSelect("SELECT plate, mjd FROM SpecObj WHERE z > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 2 {
		t.Errorf("items = %d, want 2", len(sel.Items))
	}
	if len(sel.From) != 1 {
		t.Errorf("from = %d, want 1", len(sel.From))
	}
	bin, ok := sel.Where.(*sqlast.Binary)
	if !ok || bin.Op != ">" {
		t.Errorf("where = %#v, want > comparison", sel.Where)
	}
}

// The paper's example queries (Listings 1-3) must all parse.
func TestParsePaperListings(t *testing.T) {
	queries := []string{
		// Listing 1 (syntax-error examples are still lexically/grammatically valid SQL)
		"SELECT plate , mjd , COUNT(*) , AVG( z ) FROM SpecObj WHERE z > 0.5",
		"SELECT plate , COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
		"SELECT p.ra , p.dec , s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = ( SELECT bestobjid FROM SpecObj )",
		"SELECT plate , mjd , fiberid FROM SpecObj WHERE z = 'high'",
		"SELECT s.plate , s.mjd , z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
		"SELECT plate , fid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000",
		// Listing 2
		"SELECT s.plate , s.mjd FROM SpecObj AS s WHERE s.plate IN ( SELECT p.plate FROM PhotoObj AS p WHERE p.ra > 180 )",
		"SELECT p.plate , p.mjd FROM PhotoObj AS p WHERE p.ra > 180 AND p.plate IN ( SELECT s.plate FROM SpecObj AS s )",
		"SELECT s.fiberid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 180",
		"SELECT fiberid FROM SpecObj WHERE bestobjid IN ( SELECT objid FROM PhotoObj WHERE ra > 180 )",
		"WITH HighRedshift AS ( SELECT plate , mjd FROM SpecObj WHERE z > 0.5 ) SELECT plate , mjd FROM HighRedshift",
		"SELECT * FROM SpecObj WHERE plate = 1000 AND mjd > 55000",
		"SELECT plate , AVG( z ) FROM SpecObj GROUP BY plate",
		"SELECT s.plate , s.mjd FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
		"SELECT plate , mjd , fiberid FROM SpecObj WHERE z > 0.5 OR ra > 180",
		// Listing 3
		"SELECT count (*) , cName FROM tryout GROUP BY cName ORDER BY count (*) DESC",
		"SELECT count (*) , student_course_id FROM Transcript_Cnt GROUP BY student_course_id ORDER BY count (*) DESC LIMIT 1",
		"SELECT S.name , S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 INTERSECT SELECT S.name , S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
		"SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
	}
	for i, q := range queries {
		roundTrip(t, q)
		_ = i
	}
}

func TestParseDistinctTopLimitOffset(t *testing.T) {
	sel, err := ParseSelect("SELECT DISTINCT TOP 10 a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Distinct || sel.Top == nil || *sel.Top != 10 {
		t.Errorf("distinct/top wrong: %+v", sel)
	}
	if sel.Limit == nil || *sel.Limit != 5 || sel.Offset == nil || *sel.Offset != 2 {
		t.Errorf("limit/offset wrong")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by wrong")
	}
}

func TestParseJoins(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM a JOIN b ON a.x = b.x",
		"SELECT * FROM a INNER JOIN b ON a.x = b.x",
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x",
		"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x",
		"SELECT * FROM a RIGHT JOIN b ON a.x = b.x",
		"SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x",
		"SELECT * FROM a CROSS JOIN b",
		"SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y",
		"SELECT * FROM a , b WHERE a.x = b.x",
	} {
		roundTrip(t, q)
	}
}

func TestParseJoinTree(t *testing.T) {
	sel, err := ParseSelect("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := sel.From[0].(*sqlast.Join)
	if !ok || outer.Type != "LEFT" {
		t.Fatalf("outer join = %#v, want LEFT", sel.From[0])
	}
	inner, ok := outer.Left.(*sqlast.Join)
	if !ok || inner.Type != "INNER" {
		t.Fatalf("inner join = %#v, want INNER", outer.Left)
	}
}

func TestParseSubqueries(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u )",
		"SELECT a FROM t WHERE a NOT IN ( 1 , 2 , 3 )",
		"SELECT a FROM t WHERE EXISTS ( SELECT 1 FROM u WHERE u.x = t.x )",
		"SELECT a FROM t WHERE a = ( SELECT MAX( b ) FROM u )",
		"SELECT a FROM ( SELECT a FROM t WHERE a > 1 ) AS sub WHERE a < 10",
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u WHERE b IN ( SELECT c FROM v ) )",
	} {
		roundTrip(t, q)
	}
}

func TestParseSetOps(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if sel.SetOp == nil || sel.SetOp.Op != "UNION" || !sel.SetOp.All {
		t.Fatalf("first set op = %+v", sel.SetOp)
	}
	if sel.SetOp.Right.SetOp == nil || sel.SetOp.Right.SetOp.Op != "EXCEPT" {
		t.Fatalf("second set op missing")
	}
}

func TestParseCTE(t *testing.T) {
	sel, err := ParseSelect("WITH x ( a , b ) AS ( SELECT 1 , 2 ) , y AS ( SELECT a FROM x ) SELECT * FROM y")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.With) != 2 {
		t.Fatalf("ctes = %d, want 2", len(sel.With))
	}
	if len(sel.With[0].Columns) != 2 {
		t.Errorf("cte columns = %v", sel.With[0].Columns)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := sel.Where.(*sqlast.Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v, want OR", sel.Where)
	}
	and, ok := or.R.(*sqlast.Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %#v, want AND", or.R)
	}
	// Arithmetic: 1 + 2 * 3 parses as 1 + (2*3)
	sel, err = ParseSelect("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := sel.Items[0].Expr.(*sqlast.Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %s", add.Op)
	}
	if mul, ok := add.R.(*sqlast.Binary); !ok || mul.Op != "*" {
		t.Fatalf("right = %#v", add.R)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	printed := roundTrip(t, "SELECT a FROM t WHERE ( a = 1 OR b = 2 ) AND c = 3")
	sel, _ := ParseSelect(printed)
	and := sel.Where.(*sqlast.Binary)
	if and.Op != "AND" {
		t.Fatalf("top = %s, want AND", and.Op)
	}
	if or, ok := and.L.(*sqlast.Binary); !ok || or.Op != "OR" {
		t.Fatalf("left = %#v, want OR", and.L)
	}
}

func TestParseCaseCastFunctions(t *testing.T) {
	for _, q := range []string{
		"SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
		"SELECT CAST( a AS INT ) FROM t",
		"SELECT CAST( a AS VARCHAR(32) ) FROM t",
		"SELECT COUNT(*) , COUNT(DISTINCT a) , SUM( a + b ) FROM t",
		"SELECT dbo.fGetNearbyObjEq( 180 , 0 , 1 ) FROM t",
	} {
		roundTrip(t, q)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE name LIKE '%gal%'",
		"SELECT a FROM t WHERE name NOT LIKE 'x%'",
		"SELECT a FROM t WHERE a IS NULL",
		"SELECT a FROM t WHERE a IS NOT NULL",
	} {
		roundTrip(t, q)
	}
}

func TestParseTSQLStatements(t *testing.T) {
	for _, q := range []string{
		"DECLARE @x INT",
		"DECLARE @x FLOAT = 0.5",
		"SET @x = 10",
		"EXEC dbo.spGetNeighbors 180 , 0",
		"DROP TABLE results",
		"DROP VIEW v",
		"WAITFOR DELAY '00:00:05'",
		"CREATE TABLE t ( a INT , b VARCHAR(20) )",
		"CREATE TABLE t AS SELECT a FROM u",
		"CREATE VIEW v AS SELECT a FROM t",
		"INSERT INTO t ( a , b ) VALUES ( 1 , 'x' ) , ( 2 , 'y' )",
		"INSERT INTO t SELECT a , b FROM u",
		"UPDATE t SET a = 1 , b = 'x' WHERE c > 0",
		"DELETE FROM t WHERE a = 1",
	} {
		roundTrip(t, q)
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	for _, q := range []string{
		`SELECT [My Column] FROM [My Table]`,
		`SELECT "col" FROM "table"`,
	} {
		stmt, err := ParseStatement(q)
		if err != nil {
			t.Errorf("parse %q: %v", q, err)
			continue
		}
		if stmt == nil {
			t.Errorf("nil stmt for %q", q)
		}
	}
}

func TestParseQualifiedNames(t *testing.T) {
	sel, err := ParseSelect("SELECT dbo.t.a , s.b FROM dbo.t , s")
	if err != nil {
		t.Fatal(err)
	}
	cr := sel.Items[0].Expr.(*sqlast.ColumnRef)
	if cr.Table != "dbo.t" || cr.Name != "a" {
		t.Errorf("qualified ref = %+v", cr)
	}
	tn := sel.From[0].(*sqlast.TableName)
	if tn.Name != "dbo.t" {
		t.Errorf("table name = %q", tn.Name)
	}
}

func TestParseStarVariants(t *testing.T) {
	sel, err := ParseSelect("SELECT * , t.* , a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sel.Items[0].Expr.(*sqlast.Star); !ok {
		t.Errorf("item 0 = %#v, want Star", sel.Items[0].Expr)
	}
	st, ok := sel.Items[1].Expr.(*sqlast.Star)
	if !ok || st.Table != "t" {
		t.Errorf("item 1 = %#v, want t.*", sel.Items[1].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t ORDER a",
		"SELECT a a a a FROM t",
		"SELECT ( a FROM t",
		"SELECT a FROM t WHERE a IN ( SELECT b FROM u",
		"CREATE t ( a INT )",
		"INSERT t VALUES ( 1 )",
		"SELECT a FROM t JOIN u",
		"SELECT a BETWEEN 1 , 2",
		"SELECT a FROM t WHERE NOT",
		"SELECT CASE END",
	}
	for _, q := range cases {
		_, err := ParseStatement(q)
		if err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", q)
			continue
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("ParseStatement(%q) error %v does not wrap ErrSyntax", q, err)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseStatement("SELECT a FROM t WHERE >")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Pos.Line != 1 || pe.Pos.Col == 0 {
		t.Errorf("position = %v", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "syntax error") {
		t.Errorf("message = %q", pe.Error())
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("DROP TABLE t"); err == nil {
		t.Error("ParseSelect accepted DROP")
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll("DECLARE @x INT ; SET @x = 5 ; SELECT @x")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements, want 3", len(stmts))
	}
}

func TestParseAllTrailingSemi(t *testing.T) {
	stmts, err := ParseAll("SELECT 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseComments(t *testing.T) {
	roundTrip(t, "-- leading comment\nSELECT a FROM t /* inline */ WHERE a > 1")
}

// Property: printing a random AST and parsing it back yields the same
// printed form (print∘parse is identity on printed output).
func TestRoundTripRandomASTs(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for i := 0; i < 400; i++ {
		sel := sqlast.RandSelect(r, sqlast.RandConfig{})
		printed := sqlast.Print(sel)
		stmt, err := ParseStatement(printed)
		if err != nil {
			t.Fatalf("iteration %d: parse %q: %v", i, printed, err)
		}
		printed2 := sqlast.Print(stmt)
		if printed != printed2 {
			t.Fatalf("iteration %d: round trip changed output:\n in: %s\nout: %s", i, printed, printed2)
		}
	}
}

// Property: cloning never aliases — mutating the clone leaves the original's
// printed form unchanged.
func TestCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		sel := sqlast.RandSelect(r, sqlast.RandConfig{})
		before := sqlast.Print(sel)
		clone := sqlast.CloneSelect(sel)
		// Mutate the clone aggressively.
		clone.Distinct = !clone.Distinct
		clone.Items = append(clone.Items, sqlast.SelectItem{Expr: sqlast.Number("42")})
		if clone.Where != nil {
			clone.Where = &sqlast.Unary{Op: "NOT", X: clone.Where}
		}
		if after := sqlast.Print(sel); after != before {
			t.Fatalf("iteration %d: original mutated:\nbefore: %s\n after: %s", i, before, after)
		}
	}
}

func BenchmarkParseSimple(b *testing.B) {
	q := "SELECT plate , mjd FROM SpecObj WHERE z > 0.5"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	q := "WITH hz AS ( SELECT plate , mjd FROM SpecObj WHERE z > 0.5 ) " +
		"SELECT s.plate , COUNT(*) AS n FROM hz AS s JOIN PhotoObj AS p ON s.plate = p.plate " +
		"WHERE p.ra BETWEEN 100 AND 200 AND p.dec > 0 GROUP BY s.plate HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(q); err != nil {
			b.Fatal(err)
		}
	}
}
