// Package sqlparse implements a recursive-descent parser for the benchmark's
// SQL dialect, producing sqlast trees. Parse errors satisfy errors.Is with
// ErrSyntax and carry source positions, which the syntax_error oracle relies
// on.
package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqllex"
)

// ErrSyntax is the sentinel wrapped by every parse error.
var ErrSyntax = errors.New("syntax error")

// ParseError describes a parse failure at a position.
type ParseError struct {
	Pos  sqllex.Pos
	Msg  string
	Near string // the offending token text, "" at end of input
}

func (e *ParseError) Error() string {
	if e.Near == "" {
		return fmt.Sprintf("syntax error at %s: %s (at end of input)", e.Pos, e.Msg)
	}
	return fmt.Sprintf("syntax error at %s: %s (near %q)", e.Pos, e.Msg, e.Near)
}

// Unwrap makes errors.Is(err, ErrSyntax) true.
func (e *ParseError) Unwrap() error { return ErrSyntax }

type parser struct {
	toks []sqllex.Token
	pos  int
}

// ParseStatement parses a single SQL statement (an optional trailing
// semicolon is consumed). Trailing tokens are an error.
func ParseStatement(sql string) (sqlast.Stmt, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(sqllex.Semi, "")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input")
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(sql string) (*sqlast.SelectStmt, error) {
	stmt, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("%w: expected a SELECT statement, got %T", ErrSyntax, stmt)
	}
	return sel, nil
}

// ParseAll parses a script of semicolon-separated statements.
func ParseAll(sql string) ([]sqlast.Stmt, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	var stmts []sqlast.Stmt
	for !p.atEOF() {
		stmt, err := p.parseStatement()
		if err != nil {
			return stmts, err
		}
		stmts = append(stmts, stmt)
		if !p.accept(sqllex.Semi, "") && !p.atEOF() {
			return stmts, p.errorf("expected ';' between statements")
		}
	}
	return stmts, nil
}

func newParser(sql string) (*parser, error) {
	toks, err := sqllex.LexWords(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	return &parser{toks: toks}, nil
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) cur() sqllex.Token {
	if p.atEOF() {
		return sqllex.Token{Kind: sqllex.EOF}
	}
	return p.toks[p.pos]
}

func (p *parser) peekAt(n int) sqllex.Token {
	if p.pos+n >= len(p.toks) {
		return sqllex.Token{Kind: sqllex.EOF}
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() sqllex.Token {
	t := p.cur()
	p.pos++
	return t
}

// accept consumes the current token if it matches kind (and text when text is
// non-empty, compared case-insensitively).
func (p *parser) accept(kind sqllex.Kind, text string) bool {
	t := p.cur()
	if t.Kind != kind {
		return false
	}
	if text != "" && !sqllex.MatchUpper(t.Text, text) {
		return false
	}
	p.pos++
	return true
}

// acceptKw consumes the current token when it is the given keyword.
func (p *parser) acceptKw(kw string) bool { return p.accept(sqllex.Keyword, kw) }

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) expect(kind sqllex.Kind, what string) (sqllex.Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return t, p.errorf("expected %s", what)
	}
	p.pos++
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	pos := t.Pos
	if t.Kind == sqllex.EOF && len(p.toks) > 0 {
		last := p.toks[len(p.toks)-1]
		pos = last.Pos
		pos.Offset += len(last.Text)
		pos.Col += len(last.Text)
	}
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...), Near: t.Text}
}

// identifier consumes an Ident or QuotedIdent and returns its value.
func (p *parser) identifier(what string) (string, error) {
	t := p.cur()
	if t.Kind == sqllex.Ident || t.Kind == sqllex.QuotedIdent {
		p.pos++
		return t.Val(), nil
	}
	return "", p.errorf("expected %s", what)
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStatement() (sqlast.Stmt, error) {
	t := p.cur()
	// BEGIN/COMMIT/ROLLBACK are not lexer keywords (the workload dialect never
	// uses them as identifiers, but keeping them out of the keyword table means
	// zero tokenization risk for existing queries); they arrive as Idents.
	if t.Kind == sqllex.Ident {
		switch t.Upper() {
		case "BEGIN", "COMMIT", "ROLLBACK":
			return p.parseTxn(t.Upper())
		}
	}
	if t.Kind != sqllex.Keyword {
		return nil, p.errorf("expected a statement keyword")
	}
	switch t.Upper() {
	case "SELECT", "WITH":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "DECLARE":
		return p.parseDeclare()
	case "SET":
		return p.parseSetVar()
	case "EXEC":
		return p.parseExec()
	case "DROP":
		return p.parseDrop()
	case "WAITFOR":
		return p.parseWaitfor()
	default:
		return nil, p.errorf("unsupported statement %s", t.Upper())
	}
}

func (p *parser) parseSelect() (*sqlast.SelectStmt, error) {
	var with []sqlast.CTE
	if p.acceptKw("WITH") {
		for {
			name, err := p.identifier("CTE name")
			if err != nil {
				return nil, err
			}
			cte := sqlast.CTE{Name: name}
			if p.accept(sqllex.LParen, "") {
				for {
					col, err := p.identifier("CTE column")
					if err != nil {
						return nil, err
					}
					cte.Columns = append(cte.Columns, col)
					if !p.accept(sqllex.Comma, "") {
						break
					}
				}
				if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			cte.Select = sel
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			with = append(with, cte)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
	}
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	sel.With = with

	// Set operations chain onto the right.
	cur := sel
	for {
		var op string
		switch {
		case p.acceptKw("UNION"):
			op = "UNION"
		case p.acceptKw("INTERSECT"):
			op = "INTERSECT"
		case p.acceptKw("EXCEPT"):
			op = "EXCEPT"
		}
		if op == "" {
			break
		}
		all := p.acceptKw("ALL")
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.SetOp = &sqlast.SetOp{Op: op, All: all, Right: right}
		cur = right
	}

	// ORDER BY / LIMIT apply to the whole chain and attach to the head.
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = &n
	}
	if p.acceptKw("OFFSET") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		sel.Offset = &n
	}
	return sel, nil
}

// parseSelectCore parses SELECT ... [HAVING ...] without WITH, set ops,
// ORDER BY, or LIMIT.
func (p *parser) parseSelectCore() (*sqlast.SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &sqlast.SelectStmt{}
	for {
		if p.acceptKw("DISTINCT") {
			sel.Distinct = true
			continue
		}
		if p.acceptKw("TOP") {
			n, err := p.intLiteral()
			if err != nil {
				return nil, err
			}
			sel.Top = &n
			continue
		}
		break
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(sqllex.Comma, "") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	t := p.cur()
	// Bare star.
	if t.Kind == sqllex.Op && t.Text == "*" {
		p.pos++
		return sqlast.SelectItem{Expr: &sqlast.Star{}}, nil
	}
	// Qualified star: ident.*
	if (t.Kind == sqllex.Ident || t.Kind == sqllex.QuotedIdent) &&
		p.peekAt(1).Kind == sqllex.Op && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == sqllex.Op && p.peekAt(2).Text == "*" {
		p.pos += 3
		return sqlast.SelectItem{Expr: &sqlast.Star{Table: t.Val()}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKw("AS") {
		alias, err := p.identifier("alias")
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = alias
	} else if c := p.cur(); c.Kind == sqllex.Ident || c.Kind == sqllex.QuotedIdent {
		// Implicit alias: SELECT expr alias
		p.pos++
		item.Alias = c.Val()
	}
	return item, nil
}

func (p *parser) parseTableRef() (sqlast.TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		joinType := ""
		switch {
		case p.acceptKw("JOIN"):
			joinType = "INNER"
		case p.acceptKw("INNER"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			joinType = "INNER"
		case p.cur().Is("LEFT"), p.cur().Is("RIGHT"), p.cur().Is("FULL"):
			joinType = p.advance().Upper()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKw("CROSS"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			joinType = "CROSS"
		}
		if joinType == "" {
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &sqlast.Join{Left: left, Right: right, Type: joinType}
		if joinType != "CROSS" {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = cond
		}
		left = join
	}
}

func (p *parser) parseTablePrimary() (sqlast.TableRef, error) {
	if p.accept(sqllex.LParen, "") {
		// A parenthesized SELECT is a derived table; anything else is a
		// parenthesized join tree.
		if p.cur().Is("SELECT") || p.cur().Is("WITH") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			st := &sqlast.SubqueryTable{Select: sel}
			st.Alias = p.optionalAlias()
			return st, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
		return ref, nil
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	tn := &sqlast.TableName{Name: name}
	tn.Alias = p.optionalAlias()
	return tn, nil
}

// optionalAlias consumes [AS] ident if present.
func (p *parser) optionalAlias() string {
	if p.acceptKw("AS") {
		if alias, err := p.identifier("alias"); err == nil {
			return alias
		}
		p.pos-- // restore the AS we consumed; caller will fail later
		return ""
	}
	if c := p.cur(); c.Kind == sqllex.Ident || c.Kind == sqllex.QuotedIdent {
		p.pos++
		return c.Val()
	}
	return ""
}

// qualifiedName consumes ident(.ident)* and joins with dots.
func (p *parser) qualifiedName() (string, error) {
	part, err := p.identifier("table name")
	if err != nil {
		return "", err
	}
	name := part
	for p.cur().Kind == sqllex.Op && p.cur().Text == "." &&
		(p.peekAt(1).Kind == sqllex.Ident || p.peekAt(1).Kind == sqllex.QuotedIdent) {
		p.pos++
		part, err = p.identifier("name part")
		if err != nil {
			return "", err
		}
		name += "." + part
	}
	return name, nil
}

func (p *parser) parseCreate() (sqlast.Stmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		ct := &sqlast.CreateTableStmt{Name: name}
		if p.acceptKw("AS") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			ct.AsSelect = sel
			return ct, nil
		}
		if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
			return nil, err
		}
		for {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			typ, err := p.typeName()
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, sqlast.ColumnDef{Name: col, Type: typ})
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.acceptKw("VIEW"):
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &sqlast.CreateViewStmt{Name: name, Select: sel}, nil
	default:
		return nil, p.errorf("expected TABLE or VIEW after CREATE")
	}
}

// typeName consumes a type such as INT, FLOAT, VARCHAR(32).
func (p *parser) typeName() (string, error) {
	base, err := p.identifier("type name")
	if err != nil {
		return "", err
	}
	if p.accept(sqllex.LParen, "") {
		n, err := p.expect(sqllex.Number, "type size")
		if err != nil {
			return "", err
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return "", err
		}
		return base + "(" + n.Text + ")", nil
	}
	return base, nil
}

func (p *parser) parseInsert() (sqlast.Stmt, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ins := &sqlast.InsertStmt{Table: table}
	if p.accept(sqllex.LParen, "") {
		for {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
	}
	if p.cur().Is("SELECT") || p.cur().Is("WITH") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(sqllex.Comma, "") {
				break
			}
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(sqllex.Comma, "") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (sqlast.Stmt, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	up := &sqlast.UpdateStmt{Table: table}
	if p.acceptKw("AS") {
		alias, err := p.identifier("alias")
		if err != nil {
			return nil, err
		}
		up.Alias = alias
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if !p.accept(sqllex.Op, "=") {
			return nil, p.errorf("expected '=' in SET")
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, sqlast.Assignment{Column: col, Value: val})
		if !p.accept(sqllex.Comma, "") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDelete() (sqlast.Stmt, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	del := &sqlast.DeleteStmt{Table: table}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseDeclare() (sqlast.Stmt, error) {
	if err := p.expectKw("DECLARE"); err != nil {
		return nil, err
	}
	v, err := p.expect(sqllex.Variable, "variable name")
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	d := &sqlast.DeclareStmt{Name: v.Text, Type: typ}
	if p.accept(sqllex.Op, "=") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *parser) parseSetVar() (sqlast.Stmt, error) {
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	v, err := p.expect(sqllex.Variable, "variable name")
	if err != nil {
		return nil, err
	}
	if !p.accept(sqllex.Op, "=") {
		return nil, p.errorf("expected '=' in SET")
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &sqlast.SetVarStmt{Name: v.Text, Value: e}, nil
}

func (p *parser) parseExec() (sqlast.Stmt, error) {
	if err := p.expectKw("EXEC"); err != nil {
		return nil, err
	}
	proc, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	ex := &sqlast.ExecStmt{Proc: proc}
	for !p.atEOF() && p.cur().Kind != sqllex.Semi {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ex.Args = append(ex.Args, e)
		if !p.accept(sqllex.Comma, "") {
			break
		}
	}
	return ex, nil
}

func (p *parser) parseDrop() (sqlast.Stmt, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	var kind string
	switch {
	case p.acceptKw("TABLE"):
		kind = "TABLE"
	case p.acceptKw("VIEW"):
		kind = "VIEW"
	default:
		return nil, p.errorf("expected TABLE or VIEW after DROP")
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &sqlast.DropStmt{Kind: kind, Name: name}, nil
}

func (p *parser) parseWaitfor() (sqlast.Stmt, error) {
	if err := p.expectKw("WAITFOR"); err != nil {
		return nil, err
	}
	if err := p.expectKw("DELAY"); err != nil {
		return nil, err
	}
	t, err := p.expect(sqllex.String, "delay string")
	if err != nil {
		return nil, err
	}
	return &sqlast.WaitforStmt{Delay: t.Val()}, nil
}

// parseTxn parses BEGIN [TRANSACTION|WORK], COMMIT [TRANSACTION|WORK], or
// ROLLBACK [TRANSACTION|WORK]. The caller has matched the leading word.
func (p *parser) parseTxn(kind string) (sqlast.Stmt, error) {
	p.pos++
	if !p.accept(sqllex.Ident, "TRANSACTION") && !p.accept(sqllex.Ident, "WORK") {
		p.acceptKw("TRANSACTION") // in case a future lexer promotes it
	}
	return &sqlast.TxnStmt{Kind: kind}, nil
}

func (p *parser) intLiteral() (int, error) {
	t, err := p.expect(sqllex.Number, "integer")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errorf("expected integer, got %q", t.Text)
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		// IS [NOT] NULL
		if p.acceptKw("IS") {
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &sqlast.IsNull{X: left, Not: not}
			continue
		}
		// [NOT] IN / BETWEEN / LIKE
		not := false
		if p.cur().Is("NOT") {
			next := p.peekAt(1)
			if next.Is("IN") || next.Is("BETWEEN") || next.Is("LIKE") {
				p.pos++
				not = true
			}
		}
		switch {
		case p.acceptKw("IN"):
			in := &sqlast.In{X: left, Not: not}
			if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
				return nil, err
			}
			if p.cur().Is("SELECT") || p.cur().Is("WITH") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				in.Sub = sub
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.accept(sqllex.Comma, "") {
						break
					}
				}
			}
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			left = in
			continue
		case p.acceptKw("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Between{X: left, Not: not, Lo: lo, Hi: hi}
			continue
		case p.acceptKw("LIKE"):
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			var e sqlast.Expr = &sqlast.Binary{Op: "LIKE", L: left, R: right}
			if not {
				e = &sqlast.Unary{Op: "NOT", X: e}
			}
			left = e
			continue
		}
		if not {
			return nil, p.errorf("expected IN, BETWEEN, or LIKE after NOT")
		}
		t := p.cur()
		if t.Kind == sqllex.Op {
			switch t.Text {
			case "=", "<>", "!=", "<", ">", "<=", ">=":
				p.pos++
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				op := t.Text
				if op == "!=" {
					op = "<>"
				}
				left = &sqlast.Binary{Op: op, L: left, R: right}
				continue
			}
		}
		return left, nil
	}
}

func (p *parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == sqllex.Op && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == sqllex.Op && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	t := p.cur()
	if t.Kind == sqllex.Op && (t.Text == "-" || t.Text == "+") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: t.Text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case sqllex.Number:
		p.pos++
		return sqlast.Number(t.Text), nil
	case sqllex.String:
		p.pos++
		return sqlast.Str(t.Val()), nil
	case sqllex.Variable:
		p.pos++
		return &sqlast.VarRef{Name: t.Text}, nil
	case sqllex.LParen:
		p.pos++
		if p.cur().Is("SELECT") || p.cur().Is("WITH") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			return &sqlast.Subquery{Select: sel}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case sqllex.Keyword:
		switch t.Upper() {
		case "NULL":
			p.pos++
			return sqlast.Null(), nil
		case "TRUE", "FALSE":
			p.pos++
			return &sqlast.Literal{Kind: sqlast.LitBool, Text: t.Upper()}, nil
		case "EXISTS":
			p.pos++
			if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			return &sqlast.Exists{Sub: sub}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.pos++
			if _, err := p.expect(sqllex.LParen, "'('"); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			typ, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
				return nil, err
			}
			return &sqlast.Cast{X: x, Type: typ}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Upper())
	case sqllex.Ident, sqllex.QuotedIdent:
		return p.parseNameExpr()
	}
	return nil, p.errorf("unexpected token in expression")
}

func (p *parser) parseCase() (sqlast.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &sqlast.Case{}
	if !p.cur().Is("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseNameExpr handles identifiers: function calls, qualified column
// references, and bare columns.
func (p *parser) parseNameExpr() (sqlast.Expr, error) {
	first, err := p.identifier("identifier")
	if err != nil {
		return nil, err
	}
	// Qualified reference: a.b or a.b.c (schema.table.column collapses the
	// first two parts into the qualifier). Collected before deciding between
	// function call and column so that schema-qualified calls work.
	var parts []string
	parts = append(parts, first)
	for p.cur().Kind == sqllex.Op && p.cur().Text == "." {
		next := p.peekAt(1)
		if next.Kind == sqllex.Op && next.Text == "*" {
			break // qualified star, handled by caller context
		}
		if next.Kind != sqllex.Ident && next.Kind != sqllex.QuotedIdent {
			return nil, p.errorf("expected identifier after '.'")
		}
		p.pos++
		part, err := p.identifier("name part")
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	// Function call (possibly schema-qualified).
	if p.cur().Kind == sqllex.LParen {
		p.pos++
		fc := &sqlast.FuncCall{Name: strings.Join(parts, ".")}
		if p.cur().Kind == sqllex.Op && p.cur().Text == "*" {
			p.pos++
			fc.Star = true
		} else if p.cur().Kind != sqllex.RParen {
			if p.acceptKw("DISTINCT") {
				fc.Distinct = true
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if !p.accept(sqllex.Comma, "") {
					break
				}
			}
		}
		if _, err := p.expect(sqllex.RParen, "')'"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	switch len(parts) {
	case 1:
		return sqlast.Col("", parts[0]), nil
	case 2:
		return sqlast.Col(parts[0], parts[1]), nil
	default:
		return sqlast.Col(strings.Join(parts[:len(parts)-1], "."), parts[len(parts)-1]), nil
	}
}
