package catalog

import "testing"

func TestTypeComparable(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{TypeInt, TypeInt, true},
		{TypeInt, TypeFloat, true},
		{TypeFloat, TypeInt, true},
		{TypeInt, TypeText, false},
		{TypeText, TypeText, true},
		{TypeAny, TypeText, true},
		{TypeBool, TypeInt, false},
		{TypeBool, TypeAny, true},
	}
	for _, c := range cases {
		if got := Comparable(c.a, c.b); got != c.want {
			t.Errorf("Comparable(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeFloat.String() != "float" || TypeAny.String() != "any" {
		t.Error("type names wrong")
	}
	if !TypeInt.Numeric() || TypeText.Numeric() {
		t.Error("Numeric wrong")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := SDSS()
	for _, name := range []string{"SpecObj", "specobj", "SPECOBJ", "dbo.SpecObj"} {
		if _, ok := s.Table(name); !ok {
			t.Errorf("Table(%q) not found", name)
		}
	}
	if _, ok := s.Table("NoSuch"); ok {
		t.Error("found nonexistent table")
	}
}

func TestColumnLookup(t *testing.T) {
	s := SDSS()
	tab, _ := s.Table("SpecObj")
	c, ok := tab.Column("PLATE")
	if !ok || c.Type != TypeInt {
		t.Errorf("Column(PLATE) = %+v, %v", c, ok)
	}
	if _, ok := tab.Column("nope"); ok {
		t.Error("found nonexistent column")
	}
	names := tab.ColumnNames()
	if len(names) != len(tab.Columns) || names[0] != "specobjid" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestBareName(t *testing.T) {
	if BareName("dbo.SpecObj") != "SpecObj" {
		t.Error("BareName failed for qualified")
	}
	if BareName("SpecObj") != "SpecObj" {
		t.Error("BareName failed for bare")
	}
	if BareName("a.b.c") != "c" {
		t.Error("BareName failed for deep")
	}
}

func TestSchemaFamilies(t *testing.T) {
	if got := len(SDSS().Tables()); got < 6 {
		t.Errorf("SDSS tables = %d, want >= 6", got)
	}
	if got := len(IMDB().Tables()); got != 21 {
		t.Errorf("IMDB tables = %d, want 21 (JOB schema)", got)
	}
	if got := len(SQLShareSchemas()); got < 3 {
		t.Errorf("SQLShare schemas = %d, want >= 3", got)
	}
	if got := len(SpiderSchemas()); got < 5 {
		t.Errorf("Spider schemas = %d, want >= 5", got)
	}
}

func TestSpiderCaseStudyTables(t *testing.T) {
	// The tables from the paper's Q15-Q18 must exist.
	schemas := SpiderSchemas()
	merged := Merged("spider", schemas...)
	for _, name := range []string{"tryout", "Transcript_Cnt", "concert", "stadium", "CARS_DATA", "CAR_NAMES"} {
		if _, ok := merged.Table(name); !ok {
			t.Errorf("case-study table %q missing", name)
		}
	}
}

func TestMergedCollisions(t *testing.T) {
	a := NewSchema("a")
	a.Add(T("x", "c1", TypeInt))
	b := NewSchema("b")
	b.Add(T("x", "c2", TypeText))
	m := Merged("m", a, b)
	tab, ok := m.Table("x")
	if !ok {
		t.Fatal("merged table missing")
	}
	if _, ok := tab.Column("c2"); !ok {
		t.Error("later schema should win collision")
	}
	if len(m.Tables()) != 1 {
		t.Errorf("merged tables = %d, want 1", len(m.Tables()))
	}
}

func TestAddReplaces(t *testing.T) {
	s := NewSchema("s")
	s.Add(T("t", "a", TypeInt))
	s.Add(T("t", "b", TypeText))
	if len(s.Tables()) != 1 {
		t.Fatalf("tables = %d", len(s.Tables()))
	}
	tab, _ := s.Table("t")
	if _, ok := tab.Column("b"); !ok {
		t.Error("replacement did not take effect")
	}
}
