// Package catalog defines the database schemas the benchmark workloads run
// against: a faithful replica of the SDSS astronomical schema, the IMDB
// schema used by the Join-Order Benchmark, a family of small multi-tenant
// SQLShare schemas, and Spider-style cross-domain schemas. The semantic
// checker and the execution engine resolve names and types against these.
package catalog

import "strings"

// Type is a column type.
type Type int

// Column types. TypeAny matches anything and is used for expressions whose
// type cannot be inferred.
const (
	TypeAny Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

var typeNames = map[Type]string{
	TypeAny:   "any",
	TypeInt:   "int",
	TypeFloat: "float",
	TypeText:  "text",
	TypeBool:  "bool",
}

// String returns the lowercase type name.
func (t Type) String() string { return typeNames[t] }

// Numeric reports whether the type is int or float.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Comparable reports whether values of types a and b may be compared without
// a type error. TypeAny is comparable with everything; numerics compare with
// numerics.
func Comparable(a, b Type) bool {
	if a == TypeAny || b == TypeAny {
		return true
	}
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}

// Column is a named, typed column.
type Column struct {
	Name string
	Type Type
}

// Table is a named relation with ordered columns.
type Table struct {
	Name    string
	Columns []Column
}

// Column returns the column with the given name (case-insensitive).
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Schema is a set of tables.
type Schema struct {
	Name   string
	tables map[string]*Table // keyed by lowercase bare name
	order  []string
}

// NewSchema returns an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, tables: make(map[string]*Table)}
}

// Add registers a table; later additions with the same name replace earlier
// ones.
func (s *Schema) Add(t *Table) {
	key := strings.ToLower(t.Name)
	if _, exists := s.tables[key]; !exists {
		s.order = append(s.order, key)
	}
	s.tables[key] = t
}

// Table resolves a possibly schema-qualified table name (dbo.SpecObj resolves
// to SpecObj), case-insensitively.
func (s *Schema) Table(name string) (*Table, bool) {
	key := strings.ToLower(BareName(name))
	t, ok := s.tables[key]
	return t, ok
}

// Tables returns all tables in insertion order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// BareName strips any schema qualifier from a table name.
func BareName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// T is a convenience constructor for tables. Arguments alternate name, type:
// T("SpecObj", "plate", TypeInt, "z", TypeFloat).
func T(name string, pairs ...any) *Table {
	t := &Table{Name: name}
	for i := 0; i+1 < len(pairs); i += 2 {
		t.Columns = append(t.Columns, Column{Name: pairs[i].(string), Type: pairs[i+1].(Type)})
	}
	return t
}
