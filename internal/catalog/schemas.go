package catalog

// SDSS returns a replica of the Sloan Digital Sky Survey schema fragment that
// the workload queries touch: photometric and spectroscopic object tables,
// plate bookkeeping, and neighbor links.
func SDSS() *Schema {
	s := NewSchema("sdss")
	s.Add(T("PhotoObj",
		"objid", TypeInt,
		"ra", TypeFloat,
		"dec", TypeFloat,
		"type", TypeInt,
		"mode", TypeInt,
		"flags", TypeInt,
		"u", TypeFloat,
		"g", TypeFloat,
		"r", TypeFloat,
		"i", TypeFloat,
		"psfmag_r", TypeFloat,
		"petror90_r", TypeFloat,
		"run", TypeInt,
		"rerun", TypeInt,
		"camcol", TypeInt,
		"field", TypeInt,
		"clean", TypeInt,
	))
	s.Add(T("SpecObj",
		"specobjid", TypeInt,
		"bestobjid", TypeInt,
		"plate", TypeInt,
		"mjd", TypeInt,
		"fiberid", TypeInt,
		"z", TypeFloat,
		"zerr", TypeFloat,
		"zwarning", TypeInt,
		"class", TypeText,
		"subclass", TypeText,
		"ra", TypeFloat,
		"dec", TypeFloat,
		"sn_median", TypeFloat,
	))
	s.Add(T("PhotoTag",
		"objid", TypeInt,
		"ra", TypeFloat,
		"dec", TypeFloat,
		"type", TypeInt,
		"modelmag_u", TypeFloat,
		"modelmag_g", TypeFloat,
		"modelmag_r", TypeFloat,
	))
	s.Add(T("PlateX",
		"plate", TypeInt,
		"mjd", TypeInt,
		"plateid", TypeInt,
		"tile", TypeInt,
		"programname", TypeText,
		"ra", TypeFloat,
		"dec", TypeFloat,
	))
	s.Add(T("Field",
		"fieldid", TypeInt,
		"run", TypeInt,
		"camcol", TypeInt,
		"field", TypeInt,
		"quality", TypeInt,
		"mjd", TypeInt,
	))
	s.Add(T("Neighbors",
		"objid", TypeInt,
		"neighborobjid", TypeInt,
		"distance", TypeFloat,
		"neighbortype", TypeInt,
	))
	s.Add(T("galSpecLine",
		"specobjid", TypeInt,
		"h_alpha_flux", TypeFloat,
		"h_beta_flux", TypeFloat,
		"oiii_5007_flux", TypeFloat,
		"nii_6584_flux", TypeFloat,
	))
	s.Add(T("SpecPhotoAll",
		"specobjid", TypeInt,
		"objid", TypeInt,
		"z", TypeFloat,
		"ra", TypeFloat,
		"dec", TypeFloat,
		"modelmag_r", TypeFloat,
		"class", TypeText,
	))
	return s
}

// IMDB returns the Join-Order Benchmark's IMDB schema (the 21 relations used
// by JOB queries).
func IMDB() *Schema {
	s := NewSchema("imdb")
	s.Add(T("title",
		"id", TypeInt, "title", TypeText, "imdb_index", TypeText,
		"kind_id", TypeInt, "production_year", TypeInt, "phonetic_code", TypeText,
		"episode_of_id", TypeInt, "season_nr", TypeInt, "episode_nr", TypeInt,
	))
	s.Add(T("kind_type", "id", TypeInt, "kind", TypeText))
	s.Add(T("movie_companies",
		"id", TypeInt, "movie_id", TypeInt, "company_id", TypeInt,
		"company_type_id", TypeInt, "note", TypeText,
	))
	s.Add(T("company_name",
		"id", TypeInt, "name", TypeText, "country_code", TypeText,
		"imdb_id", TypeInt, "name_pcode_nf", TypeText,
	))
	s.Add(T("company_type", "id", TypeInt, "kind", TypeText))
	s.Add(T("cast_info",
		"id", TypeInt, "person_id", TypeInt, "movie_id", TypeInt,
		"person_role_id", TypeInt, "note", TypeText, "nr_order", TypeInt,
		"role_id", TypeInt,
	))
	s.Add(T("char_name",
		"id", TypeInt, "name", TypeText, "imdb_index", TypeText, "imdb_id", TypeInt,
	))
	s.Add(T("role_type", "id", TypeInt, "role", TypeText))
	s.Add(T("name",
		"id", TypeInt, "name", TypeText, "imdb_index", TypeText,
		"gender", TypeText, "name_pcode_cf", TypeText,
	))
	s.Add(T("aka_name",
		"id", TypeInt, "person_id", TypeInt, "name", TypeText,
	))
	s.Add(T("movie_info",
		"id", TypeInt, "movie_id", TypeInt, "info_type_id", TypeInt,
		"info", TypeText, "note", TypeText,
	))
	s.Add(T("movie_info_idx",
		"id", TypeInt, "movie_id", TypeInt, "info_type_id", TypeInt, "info", TypeText,
	))
	s.Add(T("info_type", "id", TypeInt, "info", TypeText))
	s.Add(T("movie_keyword",
		"id", TypeInt, "movie_id", TypeInt, "keyword_id", TypeInt,
	))
	s.Add(T("keyword",
		"id", TypeInt, "keyword", TypeText, "phonetic_code", TypeText,
	))
	s.Add(T("person_info",
		"id", TypeInt, "person_id", TypeInt, "info_type_id", TypeInt, "info", TypeText,
	))
	s.Add(T("movie_link",
		"id", TypeInt, "movie_id", TypeInt, "linked_movie_id", TypeInt, "link_type_id", TypeInt,
	))
	s.Add(T("link_type", "id", TypeInt, "link", TypeText))
	s.Add(T("complete_cast",
		"id", TypeInt, "movie_id", TypeInt, "subject_id", TypeInt, "status_id", TypeInt,
	))
	s.Add(T("comp_cast_type", "id", TypeInt, "kind", TypeText))
	s.Add(T("aka_title",
		"id", TypeInt, "movie_id", TypeInt, "title", TypeText, "kind_id", TypeInt,
	))
	return s
}

// SQLShareSchemas returns the family of small per-tenant schemas standing in
// for SQLShare's many user databases. Each generated SQLShare query targets
// one of these.
func SQLShareSchemas() []*Schema {
	ocean := NewSchema("ocean")
	ocean.Add(T("stations",
		"station_id", TypeInt, "name", TypeText, "lat", TypeFloat,
		"lon", TypeFloat, "depth", TypeFloat,
	))
	ocean.Add(T("samples",
		"sample_id", TypeInt, "station_id", TypeInt, "cruise", TypeText,
		"collected", TypeText, "temperature", TypeFloat, "salinity", TypeFloat,
		"oxygen", TypeFloat, "depth", TypeFloat,
	))
	ocean.Add(T("taxa",
		"taxon_id", TypeInt, "sample_id", TypeInt, "genus", TypeText,
		"species", TypeText, "abundance", TypeFloat,
	))

	genomics := NewSchema("genomics")
	genomics.Add(T("genes",
		"gene_id", TypeInt, "symbol", TypeText, "chromosome", TypeText,
		"start_pos", TypeInt, "end_pos", TypeInt, "strand", TypeText,
	))
	genomics.Add(T("expressions",
		"expr_id", TypeInt, "gene_id", TypeInt, "tissue", TypeText,
		"level", TypeFloat, "pvalue", TypeFloat,
	))
	genomics.Add(T("proteins",
		"protein_id", TypeInt, "gene_id", TypeInt, "name", TypeText,
		"mass", TypeFloat, "length", TypeInt,
	))

	sales := NewSchema("sales")
	sales.Add(T("customers",
		"customer_id", TypeInt, "name", TypeText, "region", TypeText,
		"segment", TypeText, "signup_year", TypeInt,
	))
	sales.Add(T("orders",
		"order_id", TypeInt, "customer_id", TypeInt, "order_date", TypeText,
		"total", TypeFloat, "status", TypeText,
	))
	sales.Add(T("order_items",
		"item_id", TypeInt, "order_id", TypeInt, "product_id", TypeInt,
		"quantity", TypeInt, "price", TypeFloat,
	))
	sales.Add(T("products",
		"product_id", TypeInt, "name", TypeText, "category", TypeText,
		"unit_cost", TypeFloat,
	))

	sensors := NewSchema("sensors")
	sensors.Add(T("devices",
		"device_id", TypeInt, "model", TypeText, "site", TypeText,
		"installed", TypeText,
	))
	sensors.Add(T("readings",
		"reading_id", TypeInt, "device_id", TypeInt, "ts", TypeText,
		"value", TypeFloat, "unit", TypeText, "quality", TypeInt,
	))

	return []*Schema{ocean, genomics, sales, sensors}
}

// SpiderSchemas returns Spider-style cross-domain schemas, including the
// domains whose queries appear in the paper's case study (tryout, transcripts,
// concerts, cars).
func SpiderSchemas() []*Schema {
	concert := NewSchema("concert_singer")
	concert.Add(T("stadium",
		"stadium_id", TypeInt, "name", TypeText, "loc", TypeText,
		"capacity", TypeInt, "highest", TypeInt, "average", TypeInt,
	))
	concert.Add(T("concert",
		"concert_id", TypeInt, "concert_name", TypeText, "theme", TypeText,
		"stadium_id", TypeInt, "Year", TypeInt,
	))
	concert.Add(T("singer",
		"singer_id", TypeInt, "name", TypeText, "country", TypeText,
		"age", TypeInt, "is_male", TypeBool,
	))
	concert.Add(T("singer_in_concert",
		"concert_id", TypeInt, "singer_id", TypeInt,
	))

	cars := NewSchema("car_1")
	cars.Add(T("CONTINENTS", "ContId", TypeInt, "Continent", TypeText))
	cars.Add(T("COUNTRIES", "CountryId", TypeInt, "CountryName", TypeText, "Continent", TypeInt))
	cars.Add(T("CAR_MAKERS", "Id", TypeInt, "Maker", TypeText, "FullName", TypeText, "Country", TypeInt))
	cars.Add(T("MODEL_LIST", "ModelId", TypeInt, "Maker", TypeInt, "Model", TypeText))
	cars.Add(T("CAR_NAMES", "MakeId", TypeInt, "Model", TypeText, "Make", TypeText))
	cars.Add(T("CARS_DATA",
		"Id", TypeInt, "MPG", TypeFloat, "cylinders", TypeInt, "Edispl", TypeFloat,
		"Horsepower", TypeInt, "Weight", TypeInt, "accelerate", TypeFloat, "Year", TypeInt,
	))

	soccer := NewSchema("soccer_2")
	soccer.Add(T("college", "cName", TypeText, "state", TypeText, "enr", TypeInt))
	soccer.Add(T("player", "pID", TypeInt, "pName", TypeText, "yCard", TypeText, "HS", TypeInt))
	soccer.Add(T("tryout", "pID", TypeInt, "cName", TypeText, "pPos", TypeText, "decision", TypeText))

	transcripts := NewSchema("student_transcripts")
	transcripts.Add(T("Students",
		"student_id", TypeInt, "first_name", TypeText, "last_name", TypeText,
		"date_first_registered", TypeText,
	))
	transcripts.Add(T("Courses", "course_id", TypeInt, "course_name", TypeText, "credits", TypeInt))
	transcripts.Add(T("Student_Enrolment",
		"student_enrolment_id", TypeInt, "student_id", TypeInt, "semester_id", TypeInt,
	))
	transcripts.Add(T("Student_Enrolment_Courses",
		"student_course_id", TypeInt, "course_id", TypeInt, "student_enrolment_id", TypeInt,
	))
	transcripts.Add(T("Transcripts", "transcript_id", TypeInt, "transcript_date", TypeText))
	transcripts.Add(T("Transcript_Cnt",
		"transcript_id", TypeInt, "student_course_id", TypeInt,
	))

	world := NewSchema("world_1")
	world.Add(T("city",
		"ID", TypeInt, "Name", TypeText, "CountryCode", TypeText,
		"District", TypeText, "Population", TypeInt,
	))
	world.Add(T("country",
		"Code", TypeText, "Name", TypeText, "Continent", TypeText,
		"Region", TypeText, "Population", TypeInt, "SurfaceArea", TypeFloat,
		"LifeExpectancy", TypeFloat, "GNP", TypeFloat,
	))
	world.Add(T("countrylanguage",
		"CountryCode", TypeText, "Language", TypeText, "IsOfficial", TypeText,
		"Percentage", TypeFloat,
	))

	pets := NewSchema("pets_1")
	pets.Add(T("Student",
		"StuID", TypeInt, "LName", TypeText, "Fname", TypeText, "Age", TypeInt,
		"Sex", TypeText, "Major", TypeInt, "city_code", TypeText,
	))
	pets.Add(T("Pets", "PetID", TypeInt, "PetType", TypeText, "pet_age", TypeInt, "weight", TypeFloat))
	pets.Add(T("Has_Pet", "StuID", TypeInt, "PetID", TypeInt))

	return []*Schema{concert, cars, soccer, transcripts, world, pets}
}

// Merged combines several schemas into one namespace; later tables win on
// name collisions. The SQLShare oracle uses this to resolve queries without
// knowing which tenant schema a query targets.
func Merged(name string, schemas ...*Schema) *Schema {
	out := NewSchema(name)
	for _, s := range schemas {
		for _, t := range s.Tables() {
			out.Add(t)
		}
	}
	return out
}
