package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/runner"
)

// TestSpanNesting verifies parent/child links and trace-id inheritance
// across three levels.
func TestSpanNesting(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	root.SetString("kind", "run")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	recs := tr.Collected()
	if len(recs) != 3 {
		t.Fatalf("collected %d spans, want 3", len(recs))
	}
	// End order: grandchild, child, root.
	g, c, r := recs[0], recs[1], recs[2]
	if g.Name != "grandchild" || c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected span order: %s, %s, %s", g.Name, c.Name, r.Name)
	}
	if r.ParentID != "" {
		t.Errorf("root has parent %q", r.ParentID)
	}
	if c.ParentID != r.SpanID {
		t.Errorf("child parent = %q, want root %q", c.ParentID, r.SpanID)
	}
	if g.ParentID != c.SpanID {
		t.Errorf("grandchild parent = %q, want child %q", g.ParentID, c.SpanID)
	}
	if c.TraceID != r.TraceID || g.TraceID != r.TraceID {
		t.Errorf("trace ids diverge: %q %q %q", r.TraceID, c.TraceID, g.TraceID)
	}
	if len(r.TraceID) != 32 {
		t.Errorf("trace id %q is not 32 hex digits", r.TraceID)
	}
	if r.Attrs["kind"] != "run" {
		t.Errorf("root attrs = %v", r.Attrs)
	}
}

// TestConcurrentChildren drives child spans from runner.Map workers — the
// exact shape of the task drivers' example fan-out — and verifies every
// child links to the same parent with no lost or corrupted records.
func TestConcurrentChildren(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)
	ctx, parent := Start(ctx, "cell")

	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	_, err := runner.Map(ctx, 8, items, func(ctx context.Context, _ int, i int) (struct{}, error) {
		_, s := Start(ctx, "example")
		s.SetInt("idx", int64(i))
		s.Event("checked")
		s.End()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	parent.End()

	recs := tr.Collected()
	if len(recs) != len(items)+1 {
		t.Fatalf("collected %d spans, want %d", len(recs), len(items)+1)
	}
	seen := map[int64]bool{}
	for _, r := range recs[:len(items)] {
		if r.Name != "example" {
			t.Fatalf("unexpected span %q", r.Name)
		}
		if r.TraceID != parent.TraceID() {
			t.Errorf("child trace %q != parent %q", r.TraceID, parent.TraceID())
		}
		idx, ok := r.Attrs["idx"].(int64)
		if !ok {
			t.Fatalf("idx attr missing: %v", r.Attrs)
		}
		if seen[idx] {
			t.Errorf("duplicate child span for idx %d", idx)
		}
		seen[idx] = true
		if len(r.Events) != 1 || r.Events[0].Name != "checked" {
			t.Errorf("child events = %v", r.Events)
		}
	}
	if len(seen) != len(items) {
		t.Errorf("saw %d distinct children, want %d", len(seen), len(items))
	}
}

// TestRingEviction fills a small ring past capacity and verifies only the
// newest spans survive, oldest-first, with the eviction count reported.
func TestRingEviction(t *testing.T) {
	tr := New(WithRing(4))
	ctx := With(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := Start(ctx, fmt.Sprintf("span-%d", i))
		s.End()
	}
	recs, evicted := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if evicted != 6 {
		t.Errorf("evicted = %d, want 6", evicted)
	}
	for i, r := range recs {
		want := fmt.Sprintf("span-%d", 6+i)
		if r.Name != want {
			t.Errorf("ring[%d] = %q, want %q", i, r.Name, want)
		}
	}
}

// TestRingPartial snapshots a ring that has not wrapped yet.
func TestRingPartial(t *testing.T) {
	tr := New(WithRing(8))
	ctx := With(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, fmt.Sprintf("s%d", i))
		s.End()
	}
	recs, evicted := tr.Snapshot()
	if len(recs) != 3 || evicted != 0 {
		t.Fatalf("got %d spans, %d evicted; want 3, 0", len(recs), evicted)
	}
	if recs[0].Name != "s0" || recs[2].Name != "s2" {
		t.Errorf("order wrong: %v", recs)
	}
}

// TestEndIdempotent ensures double End exports once.
func TestEndIdempotent(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)
	_, s := Start(ctx, "once")
	s.End()
	s.End()
	if n := len(tr.Collected()); n != 1 {
		t.Fatalf("exported %d times, want 1", n)
	}
}

// TestNDJSONRoundTrip writes spans as NDJSON and parses each line back.
func TestNDJSONRoundTrip(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	_, child := Start(ctx, "child")
	child.SetInt("n", 7)
	child.Event("evt", String("k", "v"))
	child.EndErr(fmt.Errorf("boom"))
	root.End()

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr.Collected()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 does not parse: %v", err)
	}
	if rec.Name != "child" || rec.Attrs["error"] != "boom" || rec.Attrs["n"] != float64(7) {
		t.Errorf("child record = %+v", rec)
	}
	if len(rec.Events) != 1 || rec.Events[0].Attrs["k"] != "v" {
		t.Errorf("child events = %v", rec.Events)
	}
}

// TestChromeTraceRoundTrip writes the Chrome trace_event form and checks
// it parses with complete-span and instant events present.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)
	ctx, root := Start(ctx, "request")
	_, child := Start(ctx, "attempt")
	child.Event("retry", Int("attempt", 1))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Collected()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var complete, instant int
	for _, e := range parsed.TraceEvents {
		switch e["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if complete != 2 || instant != 1 {
		t.Errorf("got %d complete + %d instant events, want 2 + 1", complete, instant)
	}
}

// TestStartTraceExplicitID pins a root span to a caller-supplied trace id —
// the serve layer's propagated request id.
func TestStartTraceExplicitID(t *testing.T) {
	tr := New(WithCollector())
	ctx := With(context.Background(), tr)
	const rid = "0123456789abcdef0123456789abcdef"
	ctx, root := Start(ctx, "ignore-me") // StartTrace must ignore the current span
	_ = ctx
	sctx, s := StartTrace(With(context.Background(), tr), "http", rid)
	if s.TraceID() != rid {
		t.Fatalf("trace id = %q, want %q", s.TraceID(), rid)
	}
	_, child := Start(sctx, "inner")
	child.End()
	s.End()
	root.End()
	recs := tr.Collected()
	if recs[0].TraceID != rid || recs[1].TraceID != rid {
		t.Errorf("children did not inherit the explicit trace id: %v", recs)
	}
}

// TestNilSafety exercises every method on nil spans and tracers.
func TestNilSafety(t *testing.T) {
	ctx, s := Start(context.Background(), "off")
	if s != nil {
		t.Fatal("Start without a tracer returned a live span")
	}
	s.SetString("k", "v")
	s.SetInt("n", 1)
	s.SetBool("b", true)
	s.Event("e")
	s.EndErr(fmt.Errorf("x"))
	s.End()
	if s.TraceID() != "" {
		t.Error("nil span has a trace id")
	}
	if SpanFrom(ctx) != nil || TracerFrom(ctx) != nil {
		t.Error("disabled context leaked a span or tracer")
	}
	var nilTr *Tracer
	nilTr.export(SpanRecord{})
	if recs, ev := nilTr.Snapshot(); recs != nil || ev != 0 {
		t.Error("nil tracer snapshot not empty")
	}
	if nilTr.Collected() != nil {
		t.Error("nil tracer collected not empty")
	}
}
