package obs

// Export formats: the NDJSON span-record form (one JSON object per span,
// greppable and streamable) and the Chrome trace_event form loadable in
// chrome://tracing or https://ui.perfetto.dev. Both render []SpanRecord,
// the exported shape every Tracer sink traffics in.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
)

// EventRecord is one exported span event.
type EventRecord struct {
	Name string `json:"name"`
	// AtUS is the event's wall-clock time in unix microseconds.
	AtUS  int64          `json:"at_us"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanRecord is the exported form of one ended span.
type SpanRecord struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUS is the span's wall-clock start in unix microseconds; DurUS
	// its monotonic duration in microseconds.
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Events  []EventRecord  `json:"events,omitempty"`
}

// marshal renders the record as one JSON line (no trailing newline).
func (r SpanRecord) marshal() ([]byte, error) { return json.Marshal(r) }

// WriteNDJSON writes the records as newline-delimited JSON, one span per
// line.
func WriteNDJSON(w io.Writer, recs []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("obs: encoding span %s: %w", r.SpanID, err)
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format. Complete
// spans use phase "X" (ts + dur); span events become instant events
// (phase "i", thread scope).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the records in Chrome trace_event JSON. Each
// trace id maps to one "thread" lane so concurrent traces (e.g. parallel
// task cells) render as parallel tracks; span attributes and ids ride in
// args.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(recs)), DisplayTimeUnit: "ms"}
	for _, r := range recs {
		args := make(map[string]any, len(r.Attrs)+3)
		for k, v := range r.Attrs {
			args[k] = v
		}
		args["trace_id"] = r.TraceID
		args["span_id"] = r.SpanID
		if r.ParentID != "" {
			args["parent_id"] = r.ParentID
		}
		tid := laneFor(r.TraceID)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: r.Name, Phase: "X", TS: r.StartUS, Dur: maxI64(r.DurUS, 1),
			PID: 1, TID: tid, Args: args,
		})
		for _, e := range r.Events {
			eargs := make(map[string]any, len(e.Attrs)+1)
			for k, v := range e.Attrs {
				eargs[k] = v
			}
			eargs["span_id"] = r.SpanID
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Phase: "i", TS: e.AtUS,
				PID: 1, TID: tid, Scope: "t", Args: eargs,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// laneFor folds a trace id onto a stable trace_event thread id.
func laneFor(traceID string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(traceID))
	// Avoid tid 0 (some viewers reserve it).
	return h.Sum32()%1_000_000 + 1
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
