package obs

import (
	"context"
	"testing"
)

// The ISSUE requires the disabled path to be allocation-free so traced-off
// benchmarks stay at PERF.md numbers. Start on a tracer-less context must
// return (ctx, nil) without allocating, and the guarded-event idiom
// (`if s := SpanFrom(ctx); s != nil`) must not build the attr slice.

func TestNoopStartAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := Start(ctx, "noop")
		s.SetInt("n", 1)
		s.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled Start/End allocates %.1f per op, want 0", allocs)
	}
}

func TestNoopGuardedEventAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if s := SpanFrom(ctx); s != nil {
			s.Event("retry", Int("attempt", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded event allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkNoopStart(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "noop")
		s.End()
	}
}

func BenchmarkTracedStart(b *testing.B) {
	tr := New(WithRing(256))
	ctx := With(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "traced")
		s.End()
	}
}
