// Package obs is the pipeline's dependency-free tracing and telemetry
// layer: context-propagated spans with monotonic timing, parent/child
// links, attributes, and point-in-time events, exported as NDJSON span
// records, Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto), or a bounded in-memory ring the serve layer snapshots for
// GET /v1/trace.
//
// The design constraint that shapes the API is that tracing must cost
// nothing when off: Start on a context without a tracer performs two
// context lookups and returns a nil *Span, and every Span method is
// nil-receiver-safe, so instrumented code needs no "is tracing on" branch
// of its own. Call sites that would allocate just to build event
// attributes guard with SpanFrom(ctx) != nil first. A benchmark-backed
// test (noop_test.go) holds the disabled path at zero allocations.
package obs

import (
	"context"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span or event annotation. Value should be a
// string, bool, int64, or float64 so records JSON-encode predictably.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// event is one recorded point-in-time occurrence inside a span.
type event struct {
	name  string
	at    time.Duration // offset from span start
	attrs []Attr
}

// Span is one timed operation. Spans are created by Start, annotated with
// Set*/Event, and exported on End. A nil *Span is the disabled form: every
// method is a no-op, so instrumented code never branches on tracing state.
// A Span's setters and Event may be called from multiple goroutines.
type Span struct {
	tr      *Tracer
	traceID string
	id      uint64
	parent  uint64
	name    string
	start   time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []event
	ended  bool
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SetAttr records one attribute. Later values for the same key win at
// export time.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetString records a string attribute.
func (s *Span) SetString(key, value string) { s.SetAttr(Attr{Key: key, Value: value}) }

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, value int64) { s.SetAttr(Attr{Key: key, Value: value}) }

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, value bool) { s.SetAttr(Attr{Key: key, Value: value}) }

// Event records a point-in-time occurrence at the current monotonic offset
// into the span. Call sites on hot paths should guard with
// SpanFrom(ctx) != nil before building attrs, so the disabled path never
// allocates the attribute slice.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	s.events = append(s.events, event{name: name, at: at, attrs: attrs})
	s.mu.Unlock()
}

// End closes the span and exports it. Only the first End has effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.recordLocked(dur)
	s.mu.Unlock()
	s.tr.export(rec)
}

// EndErr records err as the span's error attribute (when non-nil) and ends
// it — the one-line failure form of End.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetString("error", err.Error())
	}
	s.End()
}

// recordLocked renders the export record; s.mu must be held.
func (s *Span) recordLocked(dur time.Duration) SpanRecord {
	rec := SpanRecord{
		TraceID: s.traceID,
		SpanID:  formatID(s.id),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   dur.Microseconds(),
	}
	if s.parent != 0 {
		rec.ParentID = formatID(s.parent)
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	for _, e := range s.events {
		er := EventRecord{Name: e.name, AtUS: s.start.Add(e.at).UnixMicro()}
		if len(e.attrs) > 0 {
			er.Attrs = make(map[string]any, len(e.attrs))
			for _, a := range e.attrs {
				er.Attrs[a.Key] = a.Value
			}
		}
		rec.Events = append(rec.Events, er)
	}
	return rec
}

// formatID renders a span id as 16 zero-padded hex digits.
func formatID(id uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// ---------------------------------------------------------------------------
// Tracer

// Tracer creates and exports spans. A Tracer fans each ended span out to
// every configured sink: the bounded in-memory ring (WithRing), the NDJSON
// writer (WithNDJSON), and the unbounded collector (WithCollector). Safe
// for concurrent use. A nil *Tracer is valid and inert.
type Tracer struct {
	ring    *ring
	collect bool

	nextID  atomic.Uint64
	entropy uint64

	mu        sync.Mutex
	w         writerSink
	collected []SpanRecord
}

type writerSink interface {
	Write(p []byte) (int, error)
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithRing bounds an in-memory ring of the most recent n span records —
// the store behind the serve layer's GET /v1/trace. n < 1 is treated as 1.
func WithRing(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(t *Tracer) { t.ring = &ring{buf: make([]SpanRecord, n)} }
}

// WithNDJSON streams every ended span to w as one JSON line. Writes are
// serialized; w need not be concurrency-safe.
func WithNDJSON(w writerSink) Option {
	return func(t *Tracer) { t.w = w }
}

// WithCollector retains every ended span in memory for a post-run export
// (sqlbench -trace-out). Unbounded: meant for one-shot runs, not servers.
func WithCollector() Option {
	return func(t *Tracer) { t.collect = true }
}

// New builds a tracer with the given sinks. A tracer with no sinks still
// creates real spans (their records are dropped at export), which only
// makes sense in tests.
func New(opts ...Option) *Tracer {
	t := &Tracer{entropy: processEntropy()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// processEntropy derives per-process randomness for trace ids without
// importing math/rand: wall clock nanos mixed with the pid through a
// splitmix64 finalizer.
func processEntropy() uint64 {
	x := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	return mix64(x)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// spanID returns the next process-unique span id (never 0).
func (t *Tracer) spanID() uint64 {
	for {
		if id := t.nextID.Add(1) ^ t.entropy; id != 0 {
			return id
		}
	}
}

// NewTraceID returns a fresh 32-hex-digit trace id, the W3C traceparent
// width, usable as a cross-process request id.
func (t *Tracer) NewTraceID() string {
	hi := mix64(t.entropy ^ t.nextID.Add(1))
	lo := mix64(hi ^ 0x9e3779b97f4a7c15)
	return formatID(hi) + formatID(lo)
}

// export fans one ended span's record out to the configured sinks.
func (t *Tracer) export(rec SpanRecord) {
	if t == nil {
		return
	}
	if t.ring != nil {
		t.ring.add(rec)
	}
	if t.w == nil && !t.collect {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.collect {
		t.collected = append(t.collected, rec)
	}
	if t.w != nil {
		if line, err := rec.marshal(); err == nil {
			t.w.Write(append(line, '\n'))
		}
	}
}

// Collected returns a copy of every span retained by WithCollector, in end
// order.
func (t *Tracer) Collected() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord{}, t.collected...)
}

// Snapshot returns the ring's retained spans oldest-first plus how many
// older spans the ring has evicted. Nil tracers and ringless tracers
// return (nil, 0).
func (t *Tracer) Snapshot() ([]SpanRecord, uint64) {
	if t == nil || t.ring == nil {
		return nil, 0
	}
	return t.ring.snapshot()
}

// ---------------------------------------------------------------------------
// Ring

// ring is a bounded span-record buffer: the newest len(buf) records win.
type ring struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int
	full    bool
	evicted uint64
}

func (r *ring) add(rec SpanRecord) {
	r.mu.Lock()
	if r.full {
		r.evicted++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *ring) snapshot() ([]SpanRecord, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord{}, r.buf[:r.next]...), r.evicted
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, r.evicted
}

// ---------------------------------------------------------------------------
// Context propagation

type tracerKey struct{}
type spanKey struct{}

// With returns a context carrying the tracer; spans started under it
// become roots of fresh traces.
func With(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, directly attached or via its
// current span. Nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(spanKey{}).(*Span); ok && s != nil {
		return s.tr
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, nil when tracing is off.
// The nil result is safe to use directly; guard with != nil only to avoid
// building attributes on hot paths.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a span as a child of the context's current span (or as a
// root of a new trace when only a tracer is attached) and returns the
// derived context carrying it. With no tracer in the context it returns
// the context unchanged and a nil span — the allocation-free disabled
// path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Tracer
	if parent != nil {
		tr = parent.tr
	} else {
		tr, _ = ctx.Value(tracerKey{}).(*Tracer)
	}
	if tr == nil {
		return ctx, nil
	}
	s := &Span{tr: tr, id: tr.spanID(), name: name, start: time.Now()}
	if parent != nil {
		s.traceID = parent.traceID
		s.parent = parent.id
	} else {
		s.traceID = tr.NewTraceID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartTrace begins a root span under an explicit trace id — the serve
// layer's entry point, where the id was propagated from (or is returned
// to) the caller via the X-Request-Id / traceparent headers. It requires a
// tracer directly attached with With; the context's current span, if any,
// is ignored.
func StartTrace(ctx context.Context, name, traceID string) (context.Context, *Span) {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	if tr == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = tr.NewTraceID()
	}
	s := &Span{tr: tr, id: tr.spanID(), name: name, traceID: traceID, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}
