// Package joborder generates the Join-Order Benchmark workload: all 157
// queries (the paper uses the full workload, no sampling). The 113 SELECTs
// follow the JOB shape — implicit comma joins over the IMDB schema with MIN()
// projections and long conjunctive WHERE clauses — and 44 CREATE statements
// cover result-staging DDL. Marginals follow the paper's Figure 3.
package joborder

import (
	"strconv"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/workload"
)

// Size is the workload size from Table 2 (used in full).
const Size = 157

// OriginalCount equals Size: Join-Order is not sampled.
const OriginalCount = 157

type spec struct {
	kind   string // SELECT, CREATE-DEF, CTAS
	tables int    // joined relations for SELECT
	preds  int    // filter predicates beyond join conditions
	mins   int    // number of MIN() projections
	agg    bool   // CTAS only: aggregate inside
}

// edge is one joinable pair in the IMDB join graph, rooted at title.
type edge struct {
	fromTable, fromCol string
	toTable, toCol     string
}

// joinGraph lists the JOB joins in BFS order from title; selecting the first
// n-1 edges after title yields a connected n-table query.
var joinGraph = []edge{
	{"title", "id", "movie_companies", "movie_id"},
	{"title", "id", "cast_info", "movie_id"},
	{"title", "id", "movie_info", "movie_id"},
	{"title", "id", "movie_keyword", "movie_id"},
	{"title", "kind_id", "kind_type", "id"},
	{"movie_companies", "company_id", "company_name", "id"},
	{"movie_companies", "company_type_id", "company_type", "id"},
	{"cast_info", "person_id", "name", "id"},
	{"cast_info", "role_id", "role_type", "id"},
	{"cast_info", "person_role_id", "char_name", "id"},
	{"movie_info", "info_type_id", "info_type", "id"},
	{"movie_keyword", "keyword_id", "keyword", "id"},
	{"title", "id", "movie_info_idx", "movie_id"},
	{"title", "id", "movie_link", "movie_id"},
	{"movie_link", "link_type_id", "link_type", "id"},
	{"title", "id", "aka_title", "movie_id"},
	{"name", "id", "aka_name", "person_id"},
	{"name", "id", "person_info", "person_id"},
	{"title", "id", "complete_cast", "movie_id"},
	{"complete_cast", "subject_id", "comp_cast_type", "id"},
}

// aliasOf gives each IMDB relation its canonical JOB alias.
var aliasOf = map[string]string{
	"title": "t", "movie_companies": "mc", "cast_info": "ci", "movie_info": "mi",
	"movie_keyword": "mk", "kind_type": "kt", "company_name": "cn",
	"company_type": "ct", "name": "n", "role_type": "rt", "char_name": "chn",
	"info_type": "it", "keyword": "k", "movie_info_idx": "mi_idx",
	"movie_link": "ml", "link_type": "lt", "aka_title": "at", "aka_name": "an",
	"person_info": "pi", "complete_cast": "cc", "comp_cast_type": "cct",
}

// filterTemplates are per-table filter predicates in the JOB style.
type filterTemplate func(g *workload.Gen, alias string) sqlast.Expr

var filters = map[string][]filterTemplate{
	"title": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: ">", L: sqlast.Col(a, "production_year"), R: g.IntLit(1950, 2010)}
		},
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Between{X: sqlast.Col(a, "production_year"), Lo: g.IntLit(1980, 1999), Hi: g.IntLit(2000, 2015)}
		},
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "title"), R: sqlast.Str("%" + workload.Pick(g, []string{"Dark", "Love", "War", "Night"}) + "%")}
		},
	},
	"company_name": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "country_code"), sqlast.Str(workload.Pick(g, []string{"[us]", "[de]", "[gb]", "[fr]"})))
		},
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "name"), R: sqlast.Str("%Film%")}
		},
	},
	"company_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "kind"), sqlast.Str("production companies"))
		},
	},
	"kind_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "kind"), sqlast.Str(workload.Pick(g, []string{"movie", "tv series", "episode"})))
		},
	},
	"cast_info": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.In{X: sqlast.Col(a, "note"), List: []sqlast.Expr{sqlast.Str("(producer)"), sqlast.Str("(executive producer)")}}
		},
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "<", L: sqlast.Col(a, "nr_order"), R: g.IntLit(2, 10)}
		},
	},
	"name": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "gender"), sqlast.Str(workload.Pick(g, []string{"f", "m"})))
		},
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "name"), R: sqlast.Str("B%")}
		},
	},
	"role_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "role"), sqlast.Str(workload.Pick(g, []string{"actor", "actress", "director"})))
		},
	},
	"movie_info": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.In{X: sqlast.Col(a, "info"), List: []sqlast.Expr{sqlast.Str("Drama"), sqlast.Str("Horror"), sqlast.Str("Comedy")}}
		},
	},
	"info_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "info"), sqlast.Str(workload.Pick(g, []string{"rating", "votes", "budget"})))
		},
	},
	"keyword": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "keyword"), R: sqlast.Str("%" + workload.Pick(g, []string{"sequel", "superhero", "love"}) + "%")}
		},
	},
	"movie_info_idx": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: ">", L: sqlast.Col(a, "info"), R: sqlast.Str("7.0")}
		},
	},
	"link_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "link"), R: sqlast.Str("%follow%")}
		},
	},
	"comp_cast_type": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return sqlast.Eq(sqlast.Col(a, "kind"), sqlast.Str("complete+verified"))
		},
	},
	"char_name": {
		func(g *workload.Gen, a string) sqlast.Expr {
			return &sqlast.Binary{Op: "LIKE", L: sqlast.Col(a, "name"), R: sqlast.Str("%man%")}
		},
	},
}

// Generate builds the Join-Order workload deterministically from the seed.
func Generate(seed int64) *workload.Workload {
	g := workload.NewGen(seed)
	specs := buildSpecs()
	g.R.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	w := &workload.Workload{Name: "Join-Order", Schema: catalog.IMDB(), OriginalCount: OriginalCount}
	tmpSeq := 0
	for _, sp := range specs {
		var stmt sqlast.Stmt
		switch sp.kind {
		case "SELECT":
			stmt = buildJOBSelect(g, sp)
		case "CREATE-DEF":
			tmpSeq++
			stmt = &sqlast.CreateTableStmt{
				Name: "job_result_" + strconv.Itoa(tmpSeq),
				Cols: []sqlast.ColumnDef{
					{Name: "movie_id", Type: "INT"},
					{Name: "movie_title", Type: "VARCHAR(200)"},
					{Name: "rating", Type: "FLOAT"},
				},
			}
		case "CTAS":
			tmpSeq++
			stmt = buildCTAS(g, sp, tmpSeq)
		}
		w.Queries = append(w.Queries, workload.Query{SQL: sqlast.Print(stmt), Stmt: stmt, SchemaName: "imdb"})
	}
	w.Finalize("job")
	return w
}

// buildSpecs lays out the 157 specs following Figure 3; see DESIGN.md.
func buildSpecs() []spec {
	var specs []spec
	add := func(n int, s spec) {
		for i := 0; i < n; i++ {
			specs = append(specs, s)
		}
	}
	add(23, spec{kind: "CREATE-DEF"})
	add(6, spec{kind: "CTAS", agg: true})
	add(15, spec{kind: "CTAS"})
	// SELECT table-count distribution (Fig 3b): 4:3, 5:20, 6:2, 7:16, 8:21, 9+:51.
	add(3, spec{kind: "SELECT", tables: 4, preds: 4, mins: 1})
	add(20, spec{kind: "SELECT", tables: 5, preds: 4, mins: 2})
	add(2, spec{kind: "SELECT", tables: 6, preds: 5, mins: 2})
	add(16, spec{kind: "SELECT", tables: 7, preds: 5, mins: 3})
	add(21, spec{kind: "SELECT", tables: 8, preds: 6, mins: 3})
	add(17, spec{kind: "SELECT", tables: 9, preds: 7, mins: 3})
	add(12, spec{kind: "SELECT", tables: 10, preds: 8, mins: 4})
	add(10, spec{kind: "SELECT", tables: 11, preds: 9, mins: 4})
	add(7, spec{kind: "SELECT", tables: 12, preds: 10, mins: 4})
	add(5, spec{kind: "SELECT", tables: 14, preds: 12, mins: 5})
	return specs
}

// buildJOBSelect assembles an n-table implicit-join query in the JOB style:
// SELECT MIN(...) AS ... FROM t AS t , mc AS mc , ... WHERE joins AND filters.
func buildJOBSelect(g *workload.Gen, sp spec) *sqlast.SelectStmt {
	chosen, conds := chooseJoinTree(g, sp.tables)

	sel := &sqlast.SelectStmt{}
	for _, table := range chosen {
		sel.From = append(sel.From, &sqlast.TableName{Name: table, Alias: aliasOf[table]})
	}

	// MIN() projections over text columns of the chosen tables.
	minTargets := []struct{ table, col string }{
		{"title", "title"}, {"company_name", "name"}, {"name", "name"},
		{"keyword", "keyword"}, {"movie_info", "info"}, {"char_name", "name"},
		{"link_type", "link"},
	}
	added := 0
	for _, mt := range minTargets {
		if added >= sp.mins {
			break
		}
		if containsTable(chosen, mt.table) {
			sel.Items = append(sel.Items, sqlast.SelectItem{
				Expr:  &sqlast.FuncCall{Name: "MIN", Args: []sqlast.Expr{sqlast.Col(aliasOf[mt.table], mt.col)}},
				Alias: mt.table + "_" + mt.col,
			})
			added++
		}
	}
	if added == 0 {
		sel.Items = append(sel.Items, sqlast.SelectItem{
			Expr:  &sqlast.FuncCall{Name: "MIN", Args: []sqlast.Expr{sqlast.Col("t", "title")}},
			Alias: "movie_title",
		})
	}

	// Filters beyond join conditions.
	for i := 0; i < sp.preds; i++ {
		table := chosen[g.R.Intn(len(chosen))]
		tpl, ok := filters[table]
		if !ok {
			tpl = filters["title"]
			table = "title"
		}
		conds = append(conds, tpl[g.R.Intn(len(tpl))](g, aliasOf[table]))
	}
	sel.Where = sqlast.And(conds...)
	return sel
}

// chooseJoinTree selects n connected tables (always including title) and
// returns them with their join conditions.
func chooseJoinTree(g *workload.Gen, n int) (tables []string, conds []sqlast.Expr) {
	tables = []string{"title"}
	have := map[string]bool{"title": true}
	// Walk the BFS edge list, probabilistically skipping edges for variety,
	// until n tables are connected.
	for len(tables) < n {
		progressed := false
		for _, e := range joinGraph {
			if len(tables) >= n {
				break
			}
			if have[e.fromTable] && !have[e.toTable] {
				if g.R.Intn(3) == 0 {
					continue // skip sometimes for shape variety
				}
				have[e.toTable] = true
				tables = append(tables, e.toTable)
				conds = append(conds, sqlast.Eq(
					sqlast.Col(aliasOf[e.fromTable], e.fromCol),
					sqlast.Col(aliasOf[e.toTable], e.toCol),
				))
				progressed = true
			}
		}
		if !progressed {
			// Take every available edge on the next pass.
			for _, e := range joinGraph {
				if len(tables) >= n {
					break
				}
				if have[e.fromTable] && !have[e.toTable] {
					have[e.toTable] = true
					tables = append(tables, e.toTable)
					conds = append(conds, sqlast.Eq(
						sqlast.Col(aliasOf[e.fromTable], e.fromCol),
						sqlast.Col(aliasOf[e.toTable], e.toCol),
					))
				}
			}
			break
		}
	}
	return tables, conds
}

func containsTable(tables []string, t string) bool {
	for _, x := range tables {
		if x == t {
			return true
		}
	}
	return false
}

func buildCTAS(g *workload.Gen, sp spec, seq int) sqlast.Stmt {
	inner := &sqlast.SelectStmt{
		From: []sqlast.TableRef{&sqlast.TableName{Name: "title", Alias: "t"}},
		Where: &sqlast.Binary{Op: ">", L: sqlast.Col("t", "production_year"),
			R: g.IntLit(1990, 2010)},
	}
	if sp.agg {
		inner.Items = []sqlast.SelectItem{
			{Expr: sqlast.Col("t", "kind_id")},
			{Expr: &sqlast.FuncCall{Name: "MIN", Args: []sqlast.Expr{sqlast.Col("t", "title")}}, Alias: "first_title"},
			{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}, Alias: "n"},
		}
		inner.GroupBy = []sqlast.Expr{sqlast.Col("t", "kind_id")}
	} else {
		inner.Items = []sqlast.SelectItem{
			{Expr: sqlast.Col("t", "id")},
			{Expr: sqlast.Col("t", "title")},
			{Expr: sqlast.Col("t", "production_year")},
		}
	}
	return &sqlast.CreateTableStmt{Name: "movies_cached_" + strconv.Itoa(seq), AsSelect: inner}
}
