package joborder

import (
	"testing"

	"repro/internal/semcheck"
)

func TestSizeAndTypes(t *testing.T) {
	w := Generate(1)
	if len(w.Queries) != Size {
		t.Fatalf("size = %d, want %d", len(w.Queries), Size)
	}
	byType := w.ByType()
	if byType["SELECT"] != 113 || byType["CREATE"] != 44 {
		t.Errorf("types = %v, want SELECT 113 / CREATE 44", byType)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(3), Generate(3)
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

// Table 2: 119 aggregate, 38 plain.
func TestAggregateSplit(t *testing.T) {
	yes, no := Generate(1).AggregateSplit()
	if yes != 119 || no != 38 {
		t.Errorf("aggregate split = %d/%d, want 119/38", yes, no)
	}
}

// Figure 3b: heavy-tailed table counts; 51 queries with 9+ tables.
func TestTableCountShape(t *testing.T) {
	w := Generate(1)
	var nine, five, zero int
	for _, q := range w.Queries {
		switch {
		case q.Props.TableCount >= 9:
			nine++
		case q.Props.TableCount == 5:
			five++
		case q.Props.TableCount == 0:
			zero++
		}
	}
	if nine != 51 {
		t.Errorf("9+ tables = %d, want 51", nine)
	}
	if five != 20 {
		t.Errorf("5 tables = %d, want 20", five)
	}
	if zero != 23 {
		t.Errorf("0 tables = %d, want 23 (CREATE defs)", zero)
	}
}

// Figure 3c: predicate counts bimodal — 0-1 for DDL, 7+ for JOB selects,
// nothing in 2-6.
func TestPredicateShape(t *testing.T) {
	w := Generate(1)
	var low, mid, seven, ten int
	for _, q := range w.Queries {
		p := q.Props.PredicateCount
		switch {
		case p <= 1:
			low++
		case p <= 6:
			mid++
		case p <= 10:
			seven++
		default:
			ten++
		}
	}
	if low != 44 {
		t.Errorf("0-1 preds = %d, want 44", low)
	}
	if mid != 0 {
		t.Errorf("2-6 preds = %d, want 0", mid)
	}
	if seven < 20 || seven > 34 {
		t.Errorf("7-10 preds = %d, want ~27", seven)
	}
	if ten < 79 || ten > 93 {
		t.Errorf("10+ preds = %d, want ~86", ten)
	}
}

// All queries are flat: JOB has no nesting (Table 2 shows "-").
func TestNoNesting(t *testing.T) {
	for _, q := range Generate(1).Queries {
		if q.Props.Nestedness != 0 {
			t.Errorf("query %s has nestedness %d", q.ID, q.Props.Nestedness)
		}
	}
}

func TestAllQueriesClean(t *testing.T) {
	w := Generate(1)
	checker := semcheck.New(w.Schema)
	for _, q := range w.Queries {
		if diags := checker.CheckSQL(q.SQL); len(diags) != 0 {
			t.Errorf("query %s not clean: %v\n%s", q.ID, diags, q.SQL)
		}
	}
}

// Every SELECT must include title and be connected (joins = tables-1).
func TestSelectsAreConnected(t *testing.T) {
	for _, q := range Generate(1).Queries {
		if q.Props.QueryType != "SELECT" {
			continue
		}
		if q.Props.JoinCount != q.Props.TableCount-1 {
			t.Errorf("query %s: joins %d != tables-1 %d", q.ID, q.Props.JoinCount, q.Props.TableCount-1)
		}
	}
}
