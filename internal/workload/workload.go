// Package workload defines the benchmark's query workloads and shared
// generator machinery. Each concrete generator (subpackages sdss, sqlshare,
// joborder, spider) emits a deterministic sampled workload whose marginal
// statistics are tuned to the paper's Table 2 and Figures 1-3.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/analyze"
	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqllex"
)

// Query is one workload member.
type Query struct {
	ID          string // stable identifier, e.g. "sdss-0042"
	Dataset     string // "SDSS", "SQLShare", "Join-Order", "Spider"
	SQL         string
	Stmt        sqlast.Stmt
	Props       analyze.Properties
	ElapsedMS   float64 // simulated log runtime; > 0 only for SDSS
	Description string  // ground-truth NL description; Spider only
	SchemaName  string  // tenant schema for multi-schema workloads
}

// Workload is a named set of queries plus the schema its oracle resolves
// against.
type Workload struct {
	Name          string
	Queries       []Query
	Schema        *catalog.Schema
	OriginalCount int // the pre-sampling size reported in Table 2
}

// Finalize fills in parsed statements and properties for every query and
// assigns IDs. Generators call it once after emitting SQL text.
func (w *Workload) Finalize(prefix string) {
	for i := range w.Queries {
		q := &w.Queries[i]
		q.ID = fmt.Sprintf("%s-%04d", prefix, i)
		q.Dataset = w.Name
		q.Props = analyze.Compute(q.SQL)
	}
}

// ByType counts queries per QueryType.
func (w *Workload) ByType() map[string]int {
	out := map[string]int{}
	for _, q := range w.Queries {
		out[q.Props.QueryType]++
	}
	return out
}

// AggregateSplit returns (withAggregates, withoutAggregates).
func (w *Workload) AggregateSplit() (yes, no int) {
	for _, q := range w.Queries {
		if q.Props.Aggregate {
			yes++
		} else {
			no++
		}
	}
	return yes, no
}

// ---------------------------------------------------------------------------
// Generator helpers shared by the concrete workload generators.

// JoinEdge is one joinable pair in a schema's join graph.
type JoinEdge struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// Gen wraps a seeded source with SQL-building helpers.
type Gen struct {
	R *rand.Rand
}

// NewGen returns a generator seeded deterministically.
func NewGen(seed int64) *Gen { return &Gen{R: rand.New(rand.NewSource(seed))} }

// Pick returns a uniformly random element.
func Pick[T any](g *Gen, items []T) T { return items[g.R.Intn(len(items))] }

// IntLit returns a random integer literal in [lo, hi].
func (g *Gen) IntLit(lo, hi int) *sqlast.Literal {
	return sqlast.Number(strconv.Itoa(lo + g.R.Intn(hi-lo+1)))
}

// FloatLit returns a random one-decimal float literal in [lo, hi).
func (g *Gen) FloatLit(lo, hi float64) *sqlast.Literal {
	v := lo + g.R.Float64()*(hi-lo)
	return sqlast.Number(strconv.FormatFloat(float64(int(v*10))/10, 'f', 1, 64))
}

// Predicate builds a random predicate over a typed column reference.
func (g *Gen) Predicate(qualifier string, col catalog.Column) sqlast.Expr {
	ref := sqlast.Col(qualifier, col.Name)
	switch col.Type {
	case catalog.TypeInt:
		ops := []string{">", "<", ">=", "=", "<>"}
		return &sqlast.Binary{Op: Pick(g, ops), L: ref, R: g.IntLit(1, 5000)}
	case catalog.TypeFloat:
		if g.R.Intn(4) == 0 {
			return &sqlast.Between{X: ref, Lo: g.FloatLit(0, 10), Hi: g.FloatLit(10, 400)}
		}
		ops := []string{">", "<", ">=", "<="}
		return &sqlast.Binary{Op: Pick(g, ops), L: ref, R: g.FloatLit(0, 300)}
	case catalog.TypeText:
		if g.R.Intn(3) == 0 {
			return &sqlast.Binary{Op: "LIKE", L: ref, R: sqlast.Str("%" + textWords[g.R.Intn(len(textWords))] + "%")}
		}
		return &sqlast.Binary{Op: "=", L: ref, R: sqlast.Str(textWords[g.R.Intn(len(textWords))])}
	case catalog.TypeBool:
		return &sqlast.Binary{Op: "=", L: ref, R: &sqlast.Literal{Kind: sqlast.LitBool, Text: "TRUE"}}
	default:
		return &sqlast.IsNull{X: ref, Not: true}
	}
}

var textWords = []string{"GALAXY", "STAR", "QSO", "alpha", "beta", "north", "primary", "red"}

// EqualityPredicate builds a highly selective equality on an int column,
// which the cost model treats as cheap.
func (g *Gen) EqualityPredicate(qualifier string, col catalog.Column) sqlast.Expr {
	return sqlast.Eq(sqlast.Col(qualifier, col.Name), g.IntLit(1, 100000))
}

// WordCount reports the whitespace word count of a statement's printed form.
func WordCount(stmt sqlast.Stmt) int {
	return len(sqllex.Words(sqlast.Print(stmt)))
}

// PadProjection appends additional projection columns to a SELECT until its
// printed word count reaches at least target. Columns cycle through the pool
// of (qualifier, column) pairs; scalar function wrapping adds variety. The
// pad never touches FROM/WHERE, so table, join, and predicate counts are
// preserved.
func (g *Gen) PadProjection(sel *sqlast.SelectStmt, pool []sqlast.Expr, target int) {
	if len(pool) == 0 {
		return
	}
	guard := 0
	for WordCount(sel) < target && guard < 400 {
		guard++
		src := pool[guard%len(pool)]
		var item sqlast.Expr = sqlast.CloneExpr(src)
		switch guard % 5 {
		case 1:
			item = &sqlast.FuncCall{Name: "ABS", Args: []sqlast.Expr{item}}
		case 3:
			item = &sqlast.Binary{Op: "*", L: item, R: sqlast.Number("2")}
		}
		alias := ""
		if guard%4 == 0 {
			alias = "c" + strconv.Itoa(guard)
		}
		sel.Items = append(sel.Items, sqlast.SelectItem{Expr: item, Alias: alias})
	}
}

// Bucket returns the histogram bucket index for a value given ascending
// bucket lower bounds. E.g. bounds [1,30,60,90,120] maps 45 to 1.
func Bucket(v int, bounds []int) int {
	idx := 0
	for i, b := range bounds {
		if v >= b {
			idx = i
		}
	}
	return idx
}

// Quota tracks remaining per-class generation budgets.
type Quota struct {
	counts []int
	total  int
}

// NewQuota returns a quota with the given per-class counts.
func NewQuota(counts ...int) *Quota {
	q := &Quota{counts: append([]int{}, counts...)}
	for _, c := range counts {
		q.total += c
	}
	return q
}

// Total returns the remaining total.
func (q *Quota) Total() int { return q.total }

// Take draws one unit from class i; it returns false when exhausted.
func (q *Quota) Take(i int) bool {
	if i < 0 || i >= len(q.counts) || q.counts[i] == 0 {
		return false
	}
	q.counts[i]--
	q.total--
	return true
}

// Draw removes and returns a class index with remaining budget, preferring
// classes proportionally to their remaining counts (deterministic given g).
func (q *Quota) Draw(g *Gen) int {
	if q.total == 0 {
		return -1
	}
	n := g.R.Intn(q.total)
	for i, c := range q.counts {
		if n < c {
			q.counts[i]--
			q.total--
			return i
		}
		n -= c
	}
	return -1
}

// Remaining returns a copy of the per-class counts.
func (q *Quota) Remaining() []int { return append([]int{}, q.counts...) }
