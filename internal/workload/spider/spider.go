// Package spider generates the sampled Spider workload used for the query
// explanation task: 200 SELECT queries over cross-domain schemas, each
// paired with its ground-truth natural-language description. The paper's
// case-study queries Q15-Q18 are included verbatim. Marginals follow
// Table 2: 96 aggregate / 104 plain, nestedness 185 flat / 15 one-level.
package spider

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Size is the sampled workload size from Table 2.
const Size = 200

// OriginalCount is the original dataset size from Table 2.
const OriginalCount = 4486

// template builds one query and its ground-truth description.
type template struct {
	schema string
	class  string // "agg", "nested", "plain"
	build  func(g *workload.Gen) (string, string)
}

// fixedQuery pins the paper's case-study queries (Listing 3) verbatim.
type fixedQuery struct {
	schema, class, sql, desc string
}

var fixed = []fixedQuery{
	{
		schema: "soccer_2", class: "agg",
		sql:  "SELECT COUNT(*) , cName FROM tryout GROUP BY cName ORDER BY COUNT(*) DESC",
		desc: "Find the number of students who participate in the tryout for each college, ordered by descending count.",
	},
	{
		schema: "student_transcripts", class: "agg",
		sql:  "SELECT COUNT(*) , student_course_id FROM Transcript_Cnt GROUP BY student_course_id ORDER BY COUNT(*) DESC LIMIT 1",
		desc: "Find the maximum number of times a course enrollment result appears in different transcripts, and show the course enrollment id.",
	},
	{
		schema: "concert_singer", class: "plain",
		sql: "SELECT S.name , S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 " +
			"INTERSECT SELECT S.name , S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
		desc: "Find the name and location of the stadiums where concerts took place in both 2014 and 2015.",
	},
	{
		schema: "car_1", class: "plain",
		sql:  "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
		desc: "Find the number of cylinders of the volvo car with the least acceleration.",
	},
}

func templates() []template {
	return []template{
		{"concert_singer", "agg", func(g *workload.Gen) (string, string) {
			year := 2012 + g.R.Intn(5)
			return fmt.Sprintf("SELECT COUNT(*) FROM concert WHERE Year = %d", year),
				fmt.Sprintf("Count the number of concerts held in year %d.", year)
		}},
		{"concert_singer", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT country , COUNT(*) FROM singer GROUP BY country",
				"Show the number of singers from each country."
		}},
		{"concert_singer", "plain", func(g *workload.Gen) (string, string) {
			return "SELECT name , capacity FROM stadium ORDER BY capacity DESC LIMIT 1",
				"Find the name and capacity of the stadium with the highest capacity."
		}},
		{"concert_singer", "plain", func(g *workload.Gen) (string, string) {
			year := 2013 + g.R.Intn(4)
			return fmt.Sprintf("SELECT S.name FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = %d", year),
				fmt.Sprintf("Find the names of stadiums that hosted a concert in %d.", year)
		}},
		{"concert_singer", "nested", func(g *workload.Gen) (string, string) {
			return "SELECT name FROM singer WHERE singer_id IN ( SELECT singer_id FROM singer_in_concert )",
				"Find the names of singers who performed in at least one concert."
		}},
		{"concert_singer", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT AVG( age ) , MIN( age ) , MAX( age ) FROM singer",
				"Show the average, minimum, and maximum age across all singers."
		}},
		{"car_1", "plain", func(g *workload.Gen) (string, string) {
			year := 1970 + g.R.Intn(20)
			return fmt.Sprintf("SELECT T.Make FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE C.Year = %d", year),
				fmt.Sprintf("List the makes of cars produced in %d.", year)
		}},
		{"car_1", "agg", func(g *workload.Gen) (string, string) {
			year := 1975 + g.R.Intn(15)
			return fmt.Sprintf("SELECT AVG( Horsepower ) FROM CARS_DATA WHERE Year < %d", year),
				fmt.Sprintf("Compute the average horsepower of cars made before %d.", year)
		}},
		{"car_1", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT cylinders , COUNT(*) FROM CARS_DATA GROUP BY cylinders",
				"Count the number of cars for each number of cylinders."
		}},
		{"car_1", "plain", func(g *workload.Gen) (string, string) {
			mpg := 25 + g.R.Intn(15)
			return fmt.Sprintf("SELECT Id , MPG FROM CARS_DATA WHERE MPG > %d ORDER BY MPG DESC", mpg),
				fmt.Sprintf("List the ids and fuel economies of cars with MPG above %d, from most to least efficient.", mpg)
		}},
		{"soccer_2", "plain", func(g *workload.Gen) (string, string) {
			pos := workload.Pick(g, []string{"goalie", "mid", "striker", "forward"})
			return fmt.Sprintf("SELECT cName FROM tryout WHERE pPos = '%s'", pos),
				fmt.Sprintf("Find the names of colleges that had tryouts for the %s position.", pos)
		}},
		{"soccer_2", "nested", func(g *workload.Gen) (string, string) {
			return "SELECT pName FROM player WHERE pID IN ( SELECT pID FROM tryout WHERE decision = 'yes' )",
				"Find the names of players whose tryout decision was yes."
		}},
		{"soccer_2", "agg", func(g *workload.Gen) (string, string) {
			enr := 5000 + g.R.Intn(15000)
			return fmt.Sprintf("SELECT COUNT(*) FROM college WHERE enr > %d", enr),
				fmt.Sprintf("Count the colleges whose enrollment is greater than %d.", enr)
		}},
		{"student_transcripts", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT COUNT(*) FROM Students",
				"Count the total number of students."
		}},
		{"student_transcripts", "plain", func(g *workload.Gen) (string, string) {
			return "SELECT course_name FROM Courses ORDER BY credits DESC LIMIT 1",
				"Find the name of the course with the most credits."
		}},
		{"world_1", "plain", func(g *workload.Gen) (string, string) {
			code := workload.Pick(g, []string{"USA", "BRA", "JPN", "NLD", "CHN"})
			return fmt.Sprintf("SELECT Name FROM city WHERE CountryCode = '%s' ORDER BY Population DESC LIMIT 1", code),
				fmt.Sprintf("Find the most populous city in the country with code %s.", code)
		}},
		{"world_1", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT Continent , COUNT(*) FROM country GROUP BY Continent",
				"Count the number of countries on each continent."
		}},
		{"world_1", "nested", func(g *workload.Gen) (string, string) {
			lang := workload.Pick(g, []string{"Dutch", "Spanish", "Arabic", "Hindi"})
			return fmt.Sprintf("SELECT Name FROM country WHERE Code IN ( SELECT CountryCode FROM countrylanguage WHERE Language = '%s' )", lang),
				fmt.Sprintf("Find the names of countries where %s is spoken.", lang)
		}},
		{"world_1", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT Region , AVG( LifeExpectancy ) FROM country GROUP BY Region",
				"Show the average life expectancy for each region."
		}},
		{"pets_1", "agg", func(g *workload.Gen) (string, string) {
			sex := workload.Pick(g, []string{"F", "M"})
			return fmt.Sprintf("SELECT COUNT(*) FROM Has_Pet AS h JOIN Student AS s ON h.StuID = s.StuID WHERE s.Sex = '%s'", sex),
				fmt.Sprintf("Count how many pets are owned by students of sex %s.", sex)
		}},
		{"pets_1", "agg", func(g *workload.Gen) (string, string) {
			return "SELECT PetType , AVG( weight ) FROM Pets GROUP BY PetType",
				"Show the average weight for each pet type."
		}},
		{"pets_1", "nested", func(g *workload.Gen) (string, string) {
			return "SELECT Fname FROM Student WHERE StuID IN ( SELECT StuID FROM Has_Pet )",
				"Find the first names of students who own at least one pet."
		}},
	}
}

// Generate builds the Spider workload deterministically from the seed.
func Generate(seed int64) *workload.Workload {
	g := workload.NewGen(seed)
	tpls := templates()
	byClass := map[string][]template{}
	for _, t := range tpls {
		byClass[t.class] = append(byClass[t.class], t)
	}

	merged := catalog.Merged("spider", catalog.SpiderSchemas()...)
	w := &workload.Workload{Name: "Spider", Schema: merged, OriginalCount: OriginalCount}

	appendQuery := func(schema, sql, desc string) {
		stmt, err := sqlparse.ParseStatement(sql)
		if err != nil {
			panic("spider: template produced unparsable SQL: " + sql + ": " + err.Error())
		}
		w.Queries = append(w.Queries, workload.Query{
			SQL: sql, Stmt: stmt, SchemaName: schema, Description: desc,
		})
	}

	// Case-study queries first (2 agg, 2 plain; all flat).
	for _, f := range fixed {
		appendQuery(f.schema, f.sql, f.desc)
	}

	// Fill the remaining 196 slots honoring Table 2's marginals:
	// nested 15, aggregate 96 total (2 fixed are agg), plain the rest.
	counts := map[string]int{"nested": 15, "agg": 94, "plain": 87}
	for _, class := range []string{"nested", "agg", "plain"} {
		pool := byClass[class]
		for i := 0; i < counts[class]; i++ {
			t := pool[g.R.Intn(len(pool))]
			sql, desc := t.build(g)
			appendQuery(t.schema, sql, desc)
		}
	}
	w.Finalize("spd")
	return w
}
