package spider

import (
	"strings"
	"testing"

	"repro/internal/semcheck"
)

func TestSizeAndTypes(t *testing.T) {
	w := Generate(1)
	if len(w.Queries) != Size {
		t.Fatalf("size = %d, want %d", len(w.Queries), Size)
	}
	for _, q := range w.Queries {
		if q.Props.QueryType != "SELECT" {
			t.Errorf("query %s type = %s, want SELECT", q.ID, q.Props.QueryType)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(5), Generate(5)
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

// Table 2: aggregate 96 / 104, nestedness 185 / 15.
func TestMarginals(t *testing.T) {
	w := Generate(1)
	yes, no := w.AggregateSplit()
	if yes != 96 || no != 104 {
		t.Errorf("aggregate split = %d/%d, want 96/104", yes, no)
	}
	counts := map[int]int{}
	for _, q := range w.Queries {
		counts[q.Props.Nestedness]++
	}
	if counts[0] != 185 || counts[1] != 15 {
		t.Errorf("nestedness = %v, want 185 flat / 15 one-level", counts)
	}
}

// Every query carries a non-empty ground-truth description.
func TestDescriptionsPresent(t *testing.T) {
	for _, q := range Generate(1).Queries {
		if strings.TrimSpace(q.Description) == "" {
			t.Errorf("query %s has no description", q.ID)
		}
	}
}

// The paper's case-study queries Q15-Q18 are present verbatim.
func TestCaseStudyQueriesIncluded(t *testing.T) {
	w := Generate(1)
	wantFragments := []string{
		"FROM tryout GROUP BY cName",
		"FROM Transcript_Cnt GROUP BY student_course_id",
		"INTERSECT",
		"ORDER BY C.accelerate ASC LIMIT 1",
	}
	for _, frag := range wantFragments {
		found := false
		for _, q := range w.Queries {
			if strings.Contains(q.SQL, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("case-study fragment %q missing from workload", frag)
		}
	}
}

func TestAllQueriesClean(t *testing.T) {
	w := Generate(1)
	checker := semcheck.New(w.Schema)
	for _, q := range w.Queries {
		if diags := checker.CheckSQL(q.SQL); len(diags) != 0 {
			t.Errorf("query %s not clean: %v\n%s", q.ID, diags, q.SQL)
		}
	}
}

func TestMultipleDomainsUsed(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range Generate(1).Queries {
		seen[q.SchemaName] = true
	}
	if len(seen) < 5 {
		t.Errorf("domains = %v, want >= 5", seen)
	}
}
