// Package sdss generates the sampled SDSS workload: 285 queries whose
// marginal statistics follow the paper's Table 2 and Figure 1 (query types,
// word counts, table counts, predicate counts, nestedness, aggregate share)
// and whose simulated log runtimes reproduce Figure 5's bimodal split
// (244 queries under 100 ms, 41 above 500 ms).
package sdss

import (
	"strconv"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/sqlast"
	"repro/internal/workload"
)

// Size is the sampled workload size from Table 2.
const Size = 285

// OriginalCount is the original workload size from Table 2.
const OriginalCount = 5_081_188

// spec describes one query to generate.
type spec struct {
	kind      string // SELECT, SET, EXEC, DROP, DECLARE, CREATE, INSERT
	wordMin   int    // lower bound of the target word bucket
	tables    int
	preds     int
	nest      int
	agg       bool
	expensive bool
}

// wordTargets maps bucket index (1-30, 30-60, 60-90, 90-120, 120+) to the
// padding target within the bucket.
var wordTargets = []int{12, 32, 62, 92, 122}

// cheapPartners are joinable with SpecObj and small enough that queries over
// them stay under the 100 ms band; joinCol maps partner -> (specCol, partnerCol).
var cheapPartners = []struct {
	table, specCol, col string
}{
	{"PlateX", "plate", "plate"},
	{"galSpecLine", "specobjid", "specobjid"},
	{"SpecPhotoAll", "specobjid", "specobjid"},
	{"Field", "mjd", "mjd"},
}

// bigPartners form the expensive join paths.
var bigPartners = []struct {
	table, viaTable, viaCol, col string
}{
	{"PhotoObj", "SpecObj", "bestobjid", "objid"},
	{"Neighbors", "PhotoObj", "objid", "objid"},
	{"PhotoTag", "PhotoObj", "objid", "objid"},
}

// Generate builds the SDSS workload deterministically from the seed.
func Generate(seed int64) *workload.Workload {
	g := workload.NewGen(seed)
	schema := schemaWithScratch()
	specs := buildSpecs()
	// Deterministic shuffle so buckets interleave like a real log sample.
	g.R.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	cm := engine.NewCostModel(engine.SDSSStats())
	cm.RowsPerMS = 1_000_000
	cm.Noise = 0.2

	w := &workload.Workload{Name: "SDSS", Schema: schema, OriginalCount: OriginalCount}
	for _, sp := range specs {
		stmt := buildStatement(g, sp)
		sql := sqlast.Print(stmt)
		q := workload.Query{SQL: sql, Stmt: stmt, SchemaName: "sdss"}
		q.ElapsedMS = cm.ElapsedMS(stmt, sql)
		w.Queries = append(w.Queries, q)
	}
	w.Finalize("sdss")
	return w
}

// schemaWithScratch extends the SDSS schema with the scratch tables that
// CREATE/INSERT statements in the log reference, so the oracle resolves them.
func schemaWithScratch() *catalog.Schema {
	s := catalog.SDSS()
	s.Add(catalog.T("MyResults",
		"objid", catalog.TypeInt, "ra", catalog.TypeFloat, "dec", catalog.TypeFloat,
		"z", catalog.TypeFloat,
	))
	s.Add(catalog.T("tmpGal",
		"objid", catalog.TypeInt, "plate", catalog.TypeInt, "z", catalog.TypeFloat,
	))
	return s
}

// buildSpecs lays out the 285 query specifications whose marginals follow
// Figure 1. See DESIGN.md for the bucket arithmetic.
func buildSpecs() []spec {
	var specs []spec
	add := func(n int, s spec) {
		for i := 0; i < n; i++ {
			specs = append(specs, s)
		}
	}
	// Non-SELECT statements (Figure 1a): SET 11, EXEC 8, DROP 6, DECLARE 4,
	// CREATE 3, INSERT 2.
	add(11, spec{kind: "SET"})
	add(8, spec{kind: "EXEC"})
	add(6, spec{kind: "DROP"})
	add(4, spec{kind: "DECLARE"})
	add(3, spec{kind: "CREATE"})
	add(2, spec{kind: "INSERT"})

	sel := func(bucket, tables, preds, nest int, agg, expensive bool) spec {
		return spec{kind: "SELECT", wordMin: wordTargets[bucket], tables: tables,
			preds: preds, nest: nest, agg: agg, expensive: expensive}
	}
	// Bucket 0 (1-30 words): 78 SELECTs.
	add(30, sel(0, 1, 1, 0, false, false))
	add(10, sel(0, 1, 1, 0, true, false))
	add(15, sel(0, 1, 2, 0, false, false))
	add(14, sel(0, 2, 2, 0, false, false))
	add(9, sel(0, 2, 3, 0, false, false))
	// Bucket 1 (30-60): 33.
	add(17, sel(1, 2, 3, 0, false, false))
	add(5, sel(1, 2, 3, 0, true, false))
	add(3, sel(1, 2, 3, 0, false, false))
	add(8, sel(1, 3, 3, 0, false, false))
	// Bucket 2 (60-90): 14.
	add(6, sel(2, 2, 4, 0, false, false))
	add(2, sel(2, 2, 4, 1, false, false))
	add(6, sel(2, 3, 4, 0, false, false))
	// Bucket 3 (90-120): 83, of which 21 expensive, 14 nested, 6 aggregate.
	add(21, sel(3, 3, 5, 0, false, true))
	add(2, sel(3, 2, 4, 1, false, false))
	add(7, sel(3, 3, 4, 2, false, false))
	add(5, sel(3, 3, 5, 3, false, false))
	add(6, sel(3, 2, 5, 0, true, false))
	add(13, sel(3, 2, 4, 0, false, false))
	add(19, sel(3, 3, 5, 0, false, false))
	add(10, sel(3, 4, 5, 0, false, false))
	// Bucket 4 (120+): 43, of which 20 expensive, 18 nested.
	add(5, sel(4, 1, 5, 0, false, false))
	add(3, sel(4, 3, 6, 3, false, false))
	add(3, sel(4, 3, 7, 4, false, false))
	add(5, sel(4, 3, 7, 5, false, false))
	add(7, sel(4, 3, 7, 6, false, false))
	add(10, sel(4, 4, 6, 0, false, true))
	add(5, sel(4, 5, 7, 0, false, true))
	add(5, sel(4, 4, 7, 0, false, true))
	return specs
}

func buildStatement(g *workload.Gen, sp spec) sqlast.Stmt {
	switch sp.kind {
	case "SELECT":
		return buildSelect(g, sp)
	case "SET":
		vars := []string{"@z", "@maxra", "@limit", "@mjd"}
		return &sqlast.SetVarStmt{Name: workload.Pick(g, vars), Value: g.FloatLit(0, 100)}
	case "EXEC":
		procs := []string{"dbo.fGetNearbyObjEq", "dbo.spGetNeighbors", "dbo.fGetObjFromRect"}
		return &sqlast.ExecStmt{
			Proc: workload.Pick(g, procs),
			Args: []sqlast.Expr{g.FloatLit(0, 360), g.FloatLit(-90, 90), g.IntLit(1, 10)},
		}
	case "DROP":
		return &sqlast.DropStmt{Kind: "TABLE", Name: workload.Pick(g, []string{"MyResults", "tmpGal"})}
	case "DECLARE":
		return &sqlast.DeclareStmt{Name: "@z", Type: "FLOAT", Init: g.FloatLit(0, 3)}
	case "CREATE":
		switch g.R.Intn(3) {
		case 0:
			return &sqlast.CreateTableStmt{Name: "MyResults", Cols: []sqlast.ColumnDef{
				{Name: "objid", Type: "BIGINT"}, {Name: "ra", Type: "FLOAT"},
				{Name: "dec", Type: "FLOAT"}, {Name: "z", Type: "FLOAT"},
			}}
		case 1:
			return &sqlast.CreateTableStmt{Name: "tmpGal", AsSelect: smallSelect(g)}
		default:
			return &sqlast.CreateViewStmt{Name: "vHighZ", Select: smallSelect(g)}
		}
	case "INSERT":
		if g.R.Intn(2) == 0 {
			return &sqlast.InsertStmt{Table: "MyResults", Columns: []string{"objid", "ra", "dec", "z"},
				Rows: [][]sqlast.Expr{{g.IntLit(1, 1e6), g.FloatLit(0, 360), g.FloatLit(-90, 90), g.FloatLit(0, 3)}}}
		}
		return &sqlast.InsertStmt{Table: "tmpGal", Select: &sqlast.SelectStmt{
			Items: []sqlast.SelectItem{{Expr: sqlast.Col("", "bestobjid")}, {Expr: sqlast.Col("", "plate")}, {Expr: sqlast.Col("", "z")}},
			From:  []sqlast.TableRef{&sqlast.TableName{Name: "SpecObj"}},
			Where: &sqlast.Binary{Op: ">", L: sqlast.Col("", "z"), R: g.FloatLit(0, 2)},
		}}
	default:
		panic("sdss: unknown spec kind " + sp.kind)
	}
}

func smallSelect(g *workload.Gen) *sqlast.SelectStmt {
	return &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{
			{Expr: sqlast.Col("", "plate")}, {Expr: sqlast.Col("", "mjd")}, {Expr: sqlast.Col("", "z")},
		},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: "SpecObj"}},
		Where: &sqlast.Binary{Op: ">", L: sqlast.Col("", "z"), R: g.FloatLit(0.2, 2)},
	}
}

// tableSpec is a chosen FROM participant.
type tableSpec struct {
	name, alias string
	joinCond    sqlast.Expr // join to an earlier participant; nil for the first
}

func buildSelect(g *workload.Gen, sp spec) *sqlast.SelectStmt {
	parts := chooseTables(g, sp)
	sel := &sqlast.SelectStmt{}

	// FROM: a left-deep explicit join tree.
	var from sqlast.TableRef = &sqlast.TableName{Name: parts[0].name, Alias: parts[0].alias}
	for _, p := range parts[1:] {
		from = &sqlast.Join{
			Left:  from,
			Right: &sqlast.TableName{Name: p.name, Alias: p.alias},
			Type:  "INNER",
			On:    p.joinCond,
		}
	}
	sel.From = []sqlast.TableRef{from}

	qualify := len(parts) > 1
	schema := schemaWithScratch()

	// Projection and optional aggregation.
	if sp.agg {
		groupCol := pickColumn(g, schema, parts, qualify, catalog.TypeAny)
		sel.Items = []sqlast.SelectItem{
			{Expr: groupCol},
			{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}, Alias: "n"},
		}
		sel.GroupBy = []sqlast.Expr{sqlast.CloneExpr(groupCol)}
	} else {
		n := 2 + g.R.Intn(3)
		for i := 0; i < n; i++ {
			sel.Items = append(sel.Items, sqlast.SelectItem{Expr: pickColumn(g, schema, parts, qualify, catalog.TypeAny)})
		}
	}

	// Predicates. One slot is consumed by the nested chain when present.
	var conds []sqlast.Expr
	npreds := sp.preds
	if sp.nest > 0 && npreds > 0 {
		npreds--
	}
	for i := 0; i < npreds; i++ {
		part := parts[g.R.Intn(len(parts))]
		col := pickTypedColumn(g, schema, part.name)
		qual := ""
		if qualify {
			qual = part.alias
		}
		conds = append(conds, g.Predicate(qual, col))
	}
	if sp.nest > 0 {
		conds = append(conds, nestChain(g, parts, qualify, sp.nest))
	}
	sel.Where = sqlast.And(conds...)

	// Pad the projection into the word bucket without touching FROM/WHERE.
	pool := columnPool(schema, parts, qualify)
	if sp.agg {
		aggPool := make([]sqlast.Expr, len(pool))
		for i, e := range pool {
			name := "MIN"
			if i%2 == 0 {
				name = "MAX"
			}
			aggPool[i] = &sqlast.FuncCall{Name: name, Args: []sqlast.Expr{e}}
		}
		g.PadProjection(sel, aggPool, sp.wordMin)
	} else {
		g.PadProjection(sel, pool, sp.wordMin)
	}
	return sel
}

// chooseTables picks FROM participants per the spec. Cheap queries join the
// SpecObj star over small tables; expensive queries pull in at least two of
// the production-scale relations.
func chooseTables(g *workload.Gen, sp spec) []tableSpec {
	parts := []tableSpec{{name: "SpecObj", alias: "s"}}
	if sp.tables <= 1 {
		if sp.nest > 0 {
			// The nest chain references PlateX; a single-table nested query
			// still only counts tables it names, so this is fine.
			return parts
		}
		return parts
	}
	aliasFor := map[string]string{
		"PlateX": "px", "galSpecLine": "gl", "SpecPhotoAll": "sp", "Field": "f",
		"PhotoObj": "p", "Neighbors": "nb", "PhotoTag": "pt",
	}
	if sp.expensive {
		// SpecObj -> PhotoObj -> Neighbors spine; Neighbors (the largest
		// relation) keeps three-table plans firmly above the 500 ms band.
		parts = append(parts, tableSpec{
			name: "PhotoObj", alias: "p",
			joinCond: sqlast.Eq(sqlast.Col("s", "bestobjid"), sqlast.Col("p", "objid")),
		})
		parts = append(parts, tableSpec{
			name: "Neighbors", alias: "nb",
			joinCond: sqlast.Eq(sqlast.Col("p", "objid"), sqlast.Col("nb", "objid")),
		})
		if sp.tables >= 4 {
			parts = append(parts, tableSpec{
				name: "PhotoTag", alias: "pt",
				joinCond: sqlast.Eq(sqlast.Col("p", "objid"), sqlast.Col("pt", "objid")),
			})
		}
		// Fill any remaining slots with cheap star partners.
		for i := 4; i < sp.tables; i++ {
			cp := cheapPartners[(i-4)%len(cheapPartners)]
			parts = append(parts, tableSpec{
				name: cp.table, alias: aliasFor[cp.table],
				joinCond: sqlast.Eq(sqlast.Col("s", cp.specCol), sqlast.Col(aliasFor[cp.table], cp.col)),
			})
		}
		return parts
	}
	// Cheap: star join over the small partners. Nested specs always include
	// PlateX so the IN chain has its anchor.
	order := g.R.Perm(len(cheapPartners))
	if sp.nest > 0 {
		for i, idx := range order {
			if cheapPartners[idx].table == "PlateX" {
				order[0], order[i] = order[i], order[0]
			}
		}
	}
	for i := 0; i < sp.tables-1 && i < len(order); i++ {
		cp := cheapPartners[order[i]]
		parts = append(parts, tableSpec{
			name: cp.table, alias: aliasFor[cp.table],
			joinCond: sqlast.Eq(sqlast.Col("s", cp.specCol), sqlast.Col(aliasFor[cp.table], cp.col)),
		})
	}
	return parts
}

// nestChain builds an IN-subquery chain of the given depth alternating
// between PlateX and SpecObj, anchored on the outer SpecObj alias.
func nestChain(g *workload.Gen, parts []tableSpec, qualify bool, depth int) sqlast.Expr {
	outer := "s"
	if !qualify {
		outer = ""
	}
	return &sqlast.In{
		X:   sqlast.Col(outer, "plate"),
		Sub: nestLevel(g, 1, depth),
	}
}

func nestLevel(g *workload.Gen, level, depth int) *sqlast.SelectStmt {
	table := "PlateX"
	if level%2 == 0 {
		table = "SpecObj"
	}
	alias := "n" + strconv.Itoa(level)
	sel := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col(alias, "plate")}},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: table, Alias: alias}},
	}
	cond := &sqlast.Binary{Op: ">", L: sqlast.Col(alias, "mjd"), R: g.IntLit(50000, 59000)}
	if level < depth {
		sel.Where = sqlast.And(cond, &sqlast.In{
			X:   sqlast.Col(alias, "plate"),
			Sub: nestLevel(g, level+1, depth),
		})
	} else {
		sel.Where = cond
	}
	return sel
}

// pickColumn returns a (possibly qualified) reference to a random column of
// a random chosen table.
func pickColumn(g *workload.Gen, schema *catalog.Schema, parts []tableSpec, qualify bool, want catalog.Type) *sqlast.ColumnRef {
	part := parts[g.R.Intn(len(parts))]
	col := pickTypedColumn(g, schema, part.name)
	if want != catalog.TypeAny {
		tab, _ := schema.Table(part.name)
		for _, c := range tab.Columns {
			if c.Type == want {
				col = c
				break
			}
		}
	}
	qual := ""
	if qualify {
		qual = part.alias
	}
	return sqlast.Col(qual, col.Name)
}

func pickTypedColumn(g *workload.Gen, schema *catalog.Schema, table string) catalog.Column {
	tab, ok := schema.Table(table)
	if !ok || len(tab.Columns) == 0 {
		return catalog.Column{Name: "objid", Type: catalog.TypeInt}
	}
	return tab.Columns[g.R.Intn(len(tab.Columns))]
}

// columnPool returns qualified references to every column of the chosen
// tables, used for projection padding.
func columnPool(schema *catalog.Schema, parts []tableSpec, qualify bool) []sqlast.Expr {
	var pool []sqlast.Expr
	for _, part := range parts {
		tab, ok := schema.Table(part.name)
		if !ok {
			continue
		}
		qual := ""
		if qualify {
			qual = part.alias
		}
		for _, c := range tab.Columns {
			pool = append(pool, sqlast.Col(qual, c.Name))
		}
	}
	return pool
}
