package sdss

import (
	"testing"

	"repro/internal/semcheck"
	"repro/internal/workload"
)

func gen(t *testing.T) *workload.Workload {
	t.Helper()
	return Generate(1)
}

func TestSize(t *testing.T) {
	w := gen(t)
	if len(w.Queries) != Size {
		t.Fatalf("size = %d, want %d", len(w.Queries), Size)
	}
	if w.OriginalCount != 5_081_188 {
		t.Errorf("original = %d", w.OriginalCount)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(1), Generate(1)
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs across identical seeds", i)
		}
		if a.Queries[i].ElapsedMS != b.Queries[i].ElapsedMS {
			t.Fatalf("elapsed %d differs across identical seeds", i)
		}
	}
	c := Generate(2)
	if a.Queries[0].SQL == c.Queries[0].SQL && a.Queries[1].SQL == c.Queries[1].SQL {
		t.Error("different seeds produced identical leading queries")
	}
}

// Figure 1a: query type distribution.
func TestQueryTypeDistribution(t *testing.T) {
	byType := gen(t).ByType()
	want := map[string]int{
		"SELECT": 251, "SET": 11, "EXEC": 8, "DROP": 6,
		"DECLARE": 4, "CREATE": 3, "INSERT": 2,
	}
	for typ, n := range want {
		if byType[typ] != n {
			t.Errorf("%s = %d, want %d (all: %v)", typ, byType[typ], n, byType)
		}
	}
}

// Table 2: aggregate split 21 / 264.
func TestAggregateSplit(t *testing.T) {
	yes, no := gen(t).AggregateSplit()
	if yes != 21 || no != 264 {
		t.Errorf("aggregate split = %d/%d, want 21/264", yes, no)
	}
}

// Figure 1b: word-count histogram shape (loose tolerance; the paper's exact
// bars are recorded in EXPERIMENTS.md).
func TestWordCountShape(t *testing.T) {
	w := gen(t)
	buckets := make([]int, 5)
	for _, q := range w.Queries {
		buckets[workload.Bucket(q.Props.WordCount, []int{1, 30, 60, 90, 120})]++
	}
	paper := []int{112, 33, 14, 83, 43}
	for i := range paper {
		lo, hi := paper[i]-20, paper[i]+20
		if buckets[i] < lo || buckets[i] > hi {
			t.Errorf("word bucket %d = %d, want %d±20 (all: %v)", i, buckets[i], paper[i], buckets)
		}
	}
}

// Figure 1e: nestedness tail.
func TestNestednessDistribution(t *testing.T) {
	w := gen(t)
	counts := map[int]int{}
	for _, q := range w.Queries {
		counts[q.Props.Nestedness]++
	}
	if counts[0] != 251 {
		t.Errorf("flat queries = %d, want 251 (%v)", counts[0], counts)
	}
	want := map[int]int{1: 4, 2: 7, 3: 8, 4: 3, 5: 5, 6: 7}
	for depth, n := range want {
		if counts[depth] != n {
			t.Errorf("nestedness %d = %d, want %d", depth, counts[depth], n)
		}
	}
}

// Figure 5: bimodal runtimes with 244 cheap (<100 ms) and 41 costly (>500 ms),
// nothing in between.
func TestElapsedBimodal(t *testing.T) {
	w := gen(t)
	var cheap, costly, mid int
	for _, q := range w.Queries {
		switch {
		case q.ElapsedMS < 100:
			cheap++
		case q.ElapsedMS > 500:
			costly++
		default:
			mid++
		}
	}
	if cheap != 244 || costly != 41 || mid != 0 {
		t.Errorf("elapsed split = %d cheap / %d mid / %d costly, want 244/0/41", cheap, mid, costly)
	}
}

// Every generated query must be clean: the benchmark injects errors later,
// so the base corpus cannot trip the oracle.
func TestAllQueriesClean(t *testing.T) {
	w := gen(t)
	checker := semcheck.New(w.Schema)
	for _, q := range w.Queries {
		diags := checker.CheckSQL(q.SQL)
		if len(diags) != 0 {
			t.Errorf("query %s not clean: %v\n%s", q.ID, diags, q.SQL)
		}
	}
}

func TestTableCountRange(t *testing.T) {
	w := gen(t)
	for _, q := range w.Queries {
		if q.Props.TableCount > 5 {
			t.Errorf("query %s has %d tables, max expected 5", q.ID, q.Props.TableCount)
		}
	}
}
