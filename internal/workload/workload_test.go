package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

func TestQuotaDrawExhausts(t *testing.T) {
	g := NewGen(1)
	q := NewQuota(3, 2, 5)
	counts := make([]int, 3)
	for q.Total() > 0 {
		i := q.Draw(g)
		if i < 0 {
			t.Fatal("Draw returned -1 with budget remaining")
		}
		counts[i]++
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 5 {
		t.Errorf("counts = %v", counts)
	}
	if q.Draw(g) != -1 {
		t.Error("exhausted quota should return -1")
	}
}

func TestQuotaTake(t *testing.T) {
	q := NewQuota(1, 0)
	if !q.Take(0) {
		t.Error("Take(0) should succeed")
	}
	if q.Take(0) || q.Take(1) || q.Take(5) || q.Take(-1) {
		t.Error("Take on empty/invalid class should fail")
	}
	if q.Total() != 0 {
		t.Errorf("total = %d", q.Total())
	}
}

func TestBucket(t *testing.T) {
	bounds := []int{1, 30, 60, 90, 120}
	cases := map[int]int{1: 0, 29: 0, 30: 1, 59: 1, 60: 2, 89: 2, 90: 3, 120: 4, 500: 4}
	for v, want := range cases {
		if got := Bucket(v, bounds); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPadProjectionReachesTarget(t *testing.T) {
	g := NewGen(5)
	sel := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", "a")}},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: "t"}},
	}
	pool := []sqlast.Expr{sqlast.Col("", "a"), sqlast.Col("", "b"), sqlast.Col("", "c")}
	g.PadProjection(sel, pool, 60)
	if got := WordCount(sel); got < 60 {
		t.Errorf("padded word count = %d, want >= 60", got)
	}
	// Padding must not add predicates or tables.
	if sel.Where != nil || len(sel.From) != 1 {
		t.Error("padding touched FROM/WHERE")
	}
}

func TestPadProjectionEmptyPool(t *testing.T) {
	g := NewGen(5)
	sel := &sqlast.SelectStmt{Items: []sqlast.SelectItem{{Expr: sqlast.Col("", "a")}}}
	g.PadProjection(sel, nil, 100)
	if len(sel.Items) != 1 {
		t.Error("empty pool should leave items unchanged")
	}
}

func TestPredicateTypesMatchColumn(t *testing.T) {
	g := NewGen(9)
	intCol := catalog.Column{Name: "n", Type: catalog.TypeInt}
	for i := 0; i < 50; i++ {
		p := g.Predicate("t", intCol)
		switch e := p.(type) {
		case *sqlast.Binary:
			if lit, ok := e.R.(*sqlast.Literal); ok && lit.Kind != sqlast.LitNumber {
				t.Fatalf("int predicate got literal %v", lit)
			}
		}
	}
	textCol := catalog.Column{Name: "s", Type: catalog.TypeText}
	for i := 0; i < 50; i++ {
		p := g.Predicate("t", textCol)
		if bin, ok := p.(*sqlast.Binary); ok {
			if lit, ok := bin.R.(*sqlast.Literal); ok && lit.Kind != sqlast.LitString {
				t.Fatalf("text predicate got literal kind %v", lit.Kind)
			}
		}
	}
}

func TestFinalizeAssignsIDs(t *testing.T) {
	w := &Workload{Name: "X", Queries: []Query{
		{SQL: "SELECT 1"}, {SQL: "SELECT 2"},
	}}
	w.Finalize("x")
	if w.Queries[0].ID != "x-0000" || w.Queries[1].ID != "x-0001" {
		t.Errorf("ids = %q %q", w.Queries[0].ID, w.Queries[1].ID)
	}
	if w.Queries[0].Dataset != "X" {
		t.Error("dataset not stamped")
	}
	if w.Queries[0].Props.QueryType != "SELECT" {
		t.Error("props not computed")
	}
}
