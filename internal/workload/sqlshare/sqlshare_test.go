package sqlshare

import (
	"testing"

	"repro/internal/semcheck"
	"repro/internal/workload"
)

func TestSizeAndDeterminism(t *testing.T) {
	w := Generate(1)
	if len(w.Queries) != Size {
		t.Fatalf("size = %d, want %d", len(w.Queries), Size)
	}
	b := Generate(1)
	for i := range w.Queries {
		if w.Queries[i].SQL != b.Queries[i].SQL {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

// Figure 2a: SELECT 237, WITH 10, CREATE 2, WAITFOR 1.
func TestQueryTypeDistribution(t *testing.T) {
	byType := Generate(1).ByType()
	want := map[string]int{"SELECT": 237, "WITH": 10, "CREATE": 2, "WAITFOR": 1}
	for typ, n := range want {
		if byType[typ] != n {
			t.Errorf("%s = %d, want %d (all: %v)", typ, byType[typ], n, byType)
		}
	}
}

// Table 2: aggregate split 59 / 191.
func TestAggregateSplit(t *testing.T) {
	yes, _ := Generate(1).AggregateSplit()
	if yes < 55 || yes > 63 {
		t.Errorf("aggregate yes = %d, want ~59", yes)
	}
}

// Figure 2b: overwhelmingly short queries.
func TestWordCountShape(t *testing.T) {
	w := Generate(1)
	buckets := make([]int, 5)
	for _, q := range w.Queries {
		buckets[workload.Bucket(q.Props.WordCount, []int{1, 30, 60, 90, 120})]++
	}
	paper := []int{178, 51, 8, 5, 9}
	for i := range paper {
		tol := 22
		if diff := buckets[i] - paper[i]; diff < -tol || diff > tol {
			t.Errorf("word bucket %d = %d, want %d±%d (all: %v)", i, buckets[i], paper[i], tol, buckets)
		}
	}
}

// Figure 2c: single-table dominance.
func TestTableCountShape(t *testing.T) {
	w := Generate(1)
	counts := map[int]int{}
	for _, q := range w.Queries {
		counts[q.Props.TableCount]++
	}
	if counts[1] < 140 {
		t.Errorf("single-table = %d, want >= 140 (%v)", counts[1], counts)
	}
	if counts[0] < 8 {
		t.Errorf("zero-table = %d, want >= 8", counts[0])
	}
}

// Figure 2e: nestedness tail including the WITH queries.
func TestNestednessShape(t *testing.T) {
	w := Generate(1)
	counts := map[int]int{}
	for _, q := range w.Queries {
		counts[q.Props.Nestedness]++
	}
	if counts[0] < 200 {
		t.Errorf("flat = %d, want >= 200 (%v)", counts[0], counts)
	}
	deep := counts[3] + counts[4] + counts[5]
	if deep < 3 || deep > 8 {
		t.Errorf("deep (3+) = %d, want 3..8", deep)
	}
}

func TestAllQueriesClean(t *testing.T) {
	w := Generate(1)
	checker := semcheck.New(w.Schema)
	for _, q := range w.Queries {
		if diags := checker.CheckSQL(q.SQL); len(diags) != 0 {
			t.Errorf("query %s not clean: %v\n%s", q.ID, diags, q.SQL)
		}
	}
}

func TestTenantAssignment(t *testing.T) {
	w := Generate(1)
	seen := map[string]bool{}
	for _, q := range w.Queries {
		if q.SchemaName != "" {
			seen[q.SchemaName] = true
		}
	}
	if len(seen) < 3 {
		t.Errorf("tenants used = %v, want >= 3", seen)
	}
}
