// Package sqlshare generates the sampled SQLShare workload: 250 queries over
// a family of small tenant schemas, matching the paper's Figure 2 marginals:
// overwhelmingly short single-table SELECTs, a WITH tail, strong correlation
// between query length, predicate count, and function count.
package sqlshare

import (
	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/workload"
)

// Size is the sampled workload size from Table 2.
const Size = 250

// OriginalCount is the original workload size from Table 2.
const OriginalCount = 9623

type spec struct {
	kind    string // SELECT, WITH, CREATE, WAITFOR, CONST
	wordMin int
	tables  int
	preds   int
	nest    int
	agg     bool
	funcs   bool // use function-wrapped predicates (drives Fig 4b correlation)
}

var wordTargets = []int{10, 32, 62, 92, 122}

// tenant describes one per-user schema's joinable structure.
type tenant struct {
	schema *catalog.Schema
	// chain is a join path: consecutive tables joined on the named column.
	chain []chainLink
}

type chainLink struct {
	table   string
	joinCol string // column joining to the previous link; "" for the first
}

func tenants() []tenant {
	schemas := catalog.SQLShareSchemas()
	byName := map[string]*catalog.Schema{}
	for _, s := range schemas {
		byName[s.Name] = s
	}
	return []tenant{
		{schema: byName["ocean"], chain: []chainLink{
			{table: "stations"}, {table: "samples", joinCol: "station_id"}, {table: "taxa", joinCol: "sample_id"},
		}},
		{schema: byName["genomics"], chain: []chainLink{
			{table: "genes"}, {table: "expressions", joinCol: "gene_id"}, {table: "proteins", joinCol: "gene_id"},
		}},
		{schema: byName["sales"], chain: []chainLink{
			{table: "customers"}, {table: "orders", joinCol: "customer_id"},
			{table: "order_items", joinCol: "order_id"}, {table: "products", joinCol: "product_id"},
		}},
		{schema: byName["sensors"], chain: []chainLink{
			{table: "devices"}, {table: "readings", joinCol: "device_id"},
		}},
	}
}

// Generate builds the SQLShare workload deterministically from the seed.
func Generate(seed int64) *workload.Workload {
	g := workload.NewGen(seed)
	ts := tenants()
	specs := buildSpecs()
	g.R.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	merged := catalog.Merged("sqlshare", catalog.SQLShareSchemas()...)
	w := &workload.Workload{Name: "SQLShare", Schema: merged, OriginalCount: OriginalCount}
	for _, sp := range specs {
		tn := ts[g.R.Intn(len(ts))]
		stmt := buildStatement(g, sp, tn)
		w.Queries = append(w.Queries, workload.Query{
			SQL: sqlast.Print(stmt), Stmt: stmt, SchemaName: tn.schema.Name,
		})
	}
	w.Finalize("shr")
	return w
}

// buildSpecs lays out the 250 specs following Figure 2; see DESIGN.md.
func buildSpecs() []spec {
	var specs []spec
	add := func(n int, s spec) {
		for i := 0; i < n; i++ {
			specs = append(specs, s)
		}
	}
	add(1, spec{kind: "WAITFOR"})
	add(2, spec{kind: "CREATE", wordMin: 14, tables: 1, preds: 1})
	// WITH queries: one CTE each (nestedness 1).
	add(10, spec{kind: "WITH", wordMin: 25, tables: 1, preds: 1, nest: 1})

	sel := func(bucket, tables, preds, nest int, agg, funcs bool) spec {
		return spec{kind: "SELECT", wordMin: wordTargets[bucket], tables: tables,
			preds: preds, nest: nest, agg: agg, funcs: funcs}
	}
	// Bucket 0 (1-30 words): 174 SELECTs, mostly single-table.
	add(10, spec{kind: "CONST"}) // zero-table constant SELECTs
	add(51, sel(0, 1, 0, 0, false, false))
	add(20, sel(0, 1, 0, 0, true, false))
	add(50, sel(0, 1, 1, 0, false, false))
	add(10, sel(0, 1, 1, 0, true, false))
	add(16, sel(0, 2, 1, 0, false, false))
	add(8, sel(0, 1, 1, 1, false, false))
	// Bucket 1 (30-60): 50.
	add(10, sel(1, 1, 2, 0, true, false))
	add(6, sel(1, 1, 2, 0, false, false))
	add(14, sel(1, 2, 3, 0, false, false))
	add(6, sel(1, 2, 3, 0, true, false))
	add(4, sel(1, 3, 3, 0, false, false))
	add(6, sel(1, 2, 2, 1, false, false))
	add(4, sel(1, 2, 2, 2, false, false))
	// Bucket 2 (60-90): 8.
	add(2, sel(2, 2, 4, 0, true, true))
	add(3, sel(2, 3, 5, 0, false, true))
	add(3, sel(2, 2, 4, 2, false, false))
	// Bucket 3 (90-120): 5.
	add(2, sel(3, 3, 7, 0, true, true))
	add(1, sel(3, 4, 7, 0, false, true))
	add(1, sel(3, 2, 5, 3, false, false))
	add(1, sel(3, 3, 5, 0, false, true))
	// Bucket 4 (120+): 9, long single/two-table queries with heavy
	// function-wrapped predicates (Fig 4b's word/predicate correlation).
	add(2, sel(4, 1, 9, 0, true, true))
	add(3, sel(4, 2, 9, 0, true, true))
	add(1, sel(4, 4, 8, 0, false, true))
	add(1, sel(4, 5, 8, 0, false, true))
	add(1, sel(4, 2, 7, 4, false, true))
	add(1, sel(4, 2, 7, 5, false, true))
	return specs
}

func buildStatement(g *workload.Gen, sp spec, tn tenant) sqlast.Stmt {
	switch sp.kind {
	case "WAITFOR":
		return &sqlast.WaitforStmt{Delay: "00:00:10"}
	case "CONST":
		return &sqlast.SelectStmt{Items: []sqlast.SelectItem{
			{Expr: &sqlast.Binary{Op: "+", L: g.IntLit(1, 9), R: g.IntLit(1, 9)}, Alias: "x"},
			{Expr: sqlast.Str("ok"), Alias: "status"},
		}}
	case "CREATE":
		inner := buildSelect(g, spec{kind: "SELECT", wordMin: 10, tables: 1, preds: 1}, tn)
		return &sqlast.CreateTableStmt{Name: "snapshot_" + tn.schema.Name, AsSelect: inner}
	case "WITH":
		inner := buildSelect(g, spec{kind: "SELECT", wordMin: 8, tables: 1, preds: 1}, tn)
		outerTable := "recent_" + tn.schema.Name
		sel := &sqlast.SelectStmt{
			With:  []sqlast.CTE{{Name: outerTable, Select: inner}},
			Items: []sqlast.SelectItem{{Expr: &sqlast.Star{}}},
			From:  []sqlast.TableRef{&sqlast.TableName{Name: outerTable}},
		}
		g.PadProjection(sel, nil, sp.wordMin)
		return sel
	default:
		return buildSelect(g, sp, tn)
	}
}

func buildSelect(g *workload.Gen, sp spec, tn tenant) *sqlast.SelectStmt {
	n := sp.tables
	if n < 1 {
		n = 1
	}
	// Choose a contiguous chain window so consecutive tables join.
	maxStart := len(tn.chain) - n
	links := tn.chain
	if maxStart < 0 {
		// Need more tables than the chain: extend with self-joins of the
		// last table (aliased), which keeps the query resolvable.
		for len(links) < n {
			links = append(links, links[len(links)-1])
		}
		maxStart = 0
	}
	start := 0
	if maxStart > 0 {
		start = g.R.Intn(maxStart + 1)
	}
	chosen := links[start : start+n]

	aliases := make([]string, n)
	for i := range chosen {
		aliases[i] = string(rune('a' + i))
	}
	qualify := n > 1

	sel := &sqlast.SelectStmt{}
	var from sqlast.TableRef = &sqlast.TableName{Name: chosen[0].table, Alias: aliasIf(qualify, aliases[0])}
	for i := 1; i < n; i++ {
		joinCol := chosen[i].joinCol
		if joinCol == "" || chosen[i].table == chosen[i-1].table {
			// Self-join extension: join on the first column.
			tab, _ := tn.schema.Table(chosen[i].table)
			joinCol = tab.Columns[0].Name
		}
		from = &sqlast.Join{
			Left:  from,
			Right: &sqlast.TableName{Name: chosen[i].table, Alias: aliases[i]},
			Type:  "INNER",
			On:    sqlast.Eq(sqlast.Col(aliases[i-1], joinCol), sqlast.Col(aliases[i], joinCol)),
		}
	}
	sel.From = []sqlast.TableRef{from}

	// Projection / aggregation.
	if sp.agg {
		groupRef := columnRef(g, tn, chosen[0].table, aliasIf(qualify, aliases[0]))
		sel.Items = []sqlast.SelectItem{
			{Expr: groupRef},
			{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}, Alias: "n"},
		}
		sel.GroupBy = []sqlast.Expr{sqlast.CloneExpr(groupRef)}
	} else {
		k := 1 + g.R.Intn(3)
		for i := 0; i < k; i++ {
			ti := g.R.Intn(n)
			sel.Items = append(sel.Items, sqlast.SelectItem{
				Expr: columnRef(g, tn, chosen[ti].table, aliasIf(qualify, aliases[ti])),
			})
		}
	}

	// Predicates; nested specs consume one slot for the IN chain.
	var conds []sqlast.Expr
	npreds := sp.preds
	if sp.nest > 0 && npreds > 0 {
		npreds--
	}
	for i := 0; i < npreds; i++ {
		ti := g.R.Intn(n)
		tab, _ := tn.schema.Table(chosen[ti].table)
		col := tab.Columns[g.R.Intn(len(tab.Columns))]
		pred := g.Predicate(aliasIf(qualify, aliases[ti]), col)
		if sp.funcs && col.Type.Numeric() {
			pred = &sqlast.Binary{
				Op: ">",
				L:  &sqlast.FuncCall{Name: "ABS", Args: []sqlast.Expr{sqlast.Col(aliasIf(qualify, aliases[ti]), col.Name)}},
				R:  g.FloatLit(0, 50),
			}
		}
		conds = append(conds, pred)
	}
	if sp.nest > 0 {
		conds = append(conds, nestChain(g, tn, chosen[0].table, aliasIf(qualify, aliases[0]), sp.nest))
	}
	sel.Where = sqlast.And(conds...)

	// Pad to the word bucket.
	var pool []sqlast.Expr
	for i, link := range chosen {
		tab, _ := tn.schema.Table(link.table)
		for _, c := range tab.Columns {
			pool = append(pool, sqlast.Col(aliasIf(qualify, aliases[i]), c.Name))
		}
	}
	if sp.agg {
		aggPool := make([]sqlast.Expr, len(pool))
		for i, e := range pool {
			name := "MIN"
			if i%2 == 0 {
				name = "MAX"
			}
			aggPool[i] = &sqlast.FuncCall{Name: name, Args: []sqlast.Expr{e}}
		}
		g.PadProjection(sel, aggPool, sp.wordMin)
	} else {
		g.PadProjection(sel, pool, sp.wordMin)
	}
	return sel
}

func aliasIf(qualify bool, alias string) string {
	if qualify {
		return alias
	}
	return ""
}

func columnRef(g *workload.Gen, tn tenant, table, qualifier string) *sqlast.ColumnRef {
	tab, _ := tn.schema.Table(table)
	col := tab.Columns[g.R.Intn(len(tab.Columns))]
	return sqlast.Col(qualifier, col.Name)
}

// nestChain builds an IN chain within the tenant's first two chain tables.
func nestChain(g *workload.Gen, tn tenant, outerTable, outerQual string, depth int) sqlast.Expr {
	// Join column linking the first two chain tables.
	joinCol := tn.chain[1].joinCol
	return &sqlast.In{
		X:   sqlast.Col(outerQual, pickAnchor(tn, outerTable, joinCol)),
		Sub: nestLevel(g, tn, 1, depth, joinCol),
	}
}

// pickAnchor returns joinCol if the outer table has it, otherwise the
// table's first column (self-referencing chain).
func pickAnchor(tn tenant, table, joinCol string) string {
	tab, _ := tn.schema.Table(table)
	if _, ok := tab.Column(joinCol); ok {
		return joinCol
	}
	return tab.Columns[0].Name
}

func nestLevel(g *workload.Gen, tn tenant, level, depth int, joinCol string) *sqlast.SelectStmt {
	// Alternate between the two ends of the first chain edge; both carry the
	// join column.
	table := tn.chain[1].table
	if level%2 == 0 {
		table = tn.chain[0].table
	}
	tab, _ := tn.schema.Table(table)
	anchor := joinCol
	if _, ok := tab.Column(anchor); !ok {
		anchor = tab.Columns[0].Name
	}
	sel := &sqlast.SelectStmt{
		Items: []sqlast.SelectItem{{Expr: sqlast.Col("", anchor)}},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: table}},
	}
	var numCol *catalog.Column
	for i := range tab.Columns {
		if tab.Columns[i].Type.Numeric() && tab.Columns[i].Name != anchor {
			numCol = &tab.Columns[i]
			break
		}
	}
	var cond sqlast.Expr
	if numCol != nil {
		cond = &sqlast.Binary{Op: ">", L: sqlast.Col("", numCol.Name), R: g.IntLit(0, 100)}
	} else {
		cond = &sqlast.IsNull{X: sqlast.Col("", anchor), Not: true}
	}
	if level < depth {
		sel.Where = sqlast.And(cond, &sqlast.In{
			X:   sqlast.Col("", anchor),
			Sub: nestLevel(g, tn, level+1, depth, joinCol),
		})
	} else {
		sel.Where = cond
	}
	return sel
}
