// Command workloadgen emits the generated workloads and their task labels
// as JSON, for inspection or for use by external harnesses.
//
// Usage:
//
//	workloadgen -workload SDSS
//	workloadgen -workload all -labels -seed 2 > bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

type queryJSON struct {
	ID          string  `json:"id"`
	Dataset     string  `json:"dataset"`
	SQL         string  `json:"sql"`
	QueryType   string  `json:"query_type"`
	WordCount   int     `json:"word_count"`
	TableCount  int     `json:"table_count"`
	Nestedness  int     `json:"nestedness"`
	Aggregate   bool    `json:"aggregate"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
	Description string  `json:"description,omitempty"`
}

type labelsJSON struct {
	Syntax  map[string][]core.SyntaxExample `json:"syntax,omitempty"`
	Tokens  map[string][]core.TokenExample  `json:"tokens,omitempty"`
	Equiv   map[string][]core.EquivExample  `json:"equiv,omitempty"`
	Perf    []core.PerfExample              `json:"perf,omitempty"`
	Explain []core.ExplainExample           `json:"explain,omitempty"`
}

type output struct {
	Queries []queryJSON `json:"queries"`
	Labels  *labelsJSON `json:"labels,omitempty"`
}

func main() {
	var (
		workloadFlag = flag.String("workload", "all", "SDSS | SQLShare | Join-Order | Spider | all")
		seed         = flag.Int64("seed", 1, "generation seed")
		labels       = flag.Bool("labels", false, "include task labels (error injections, removals, pairs)")
		verify       = flag.Bool("verify", false, "engine-verify equivalence pairs (slower)")
	)
	flag.Parse()

	bench, err := core.Build(core.BuildConfig{Seed: *seed, VerifyEquivalences: *verify})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}

	var out output
	for _, name := range []string{core.SDSS, core.SQLShare, core.JoinOrder, core.Spider} {
		if *workloadFlag != "all" && *workloadFlag != name {
			continue
		}
		w := bench.Workloads[name]
		for _, q := range w.Queries {
			out.Queries = append(out.Queries, queryJSON{
				ID: q.ID, Dataset: q.Dataset, SQL: q.SQL,
				QueryType: q.Props.QueryType, WordCount: q.Props.WordCount,
				TableCount: q.Props.TableCount, Nestedness: q.Props.Nestedness,
				Aggregate: q.Props.Aggregate, ElapsedMS: q.ElapsedMS,
				Description: q.Description,
			})
		}
	}
	if *labels {
		out.Labels = &labelsJSON{
			Syntax: bench.Syntax, Tokens: bench.Tokens, Equiv: bench.Equiv,
			Perf: bench.Perf, Explain: bench.Explain,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}
