// Command sqlbench regenerates the paper's tables and figures from the
// benchmark.
//
// Usage:
//
//	sqlbench -list
//	sqlbench -exp table3
//	sqlbench -exp table3,table4 -seed 2
//	sqlbench -exp all -noverify
//	sqlbench -exp all -parallel 16
//
// Output is byte-identical at every -parallel setting; -parallel 1
// reproduces the fully sequential pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Int64("seed", 1, "benchmark seed")
		noVerify = flag.Bool("noverify", false, "skip engine verification of equivalence pairs (faster)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for benchmark build and task runs (1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Validate every requested ID before the (expensive) benchmark build so
	// a typo fails in milliseconds, not after minutes of verification.
	var exps []experiments.Experiment
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sqlbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		exps = append(exps, e)
	}

	env, err := experiments.NewEnvConfig(experiments.Config{
		Seed:               *seed,
		VerifyEquivalences: !*noVerify,
		Parallel:           *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlbench: building benchmark:", err)
		os.Exit(1)
	}
	for _, e := range exps {
		if err := e.Run(env, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
