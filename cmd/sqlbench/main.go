// Command sqlbench regenerates the paper's tables and figures from the
// benchmark.
//
// Usage:
//
//	sqlbench -list
//	sqlbench -exp table3
//	sqlbench -exp table3,table4 -seed 2
//	sqlbench -exp all -noverify
//	sqlbench -exp all -parallel 16
//	sqlbench -exp all -stats
//	sqlbench -exp table6 -models '[{"name":"gpt-4o","provider":"http",...}]'
//	sqlbench -exp table6 -models @models.json
//	sqlbench -exp all -continue-on-error -max-failures 50
//	sqlbench -exp all -checkpoint-dir /tmp/ckpt   # rerun resumes, byte-identical
//	sqlbench -exp table3 -store-dir /tmp/stores   # durable state-task oracles;
//	                                              # a rerun recovers from the WAL
//	sqlbench -exp table3 -store-dir /tmp/stores -store-pool 4  # force eviction
//	sqlbench -exp table3 -trace-out run.json      # Chrome trace of the whole run
//	sqlbench -exp table3 -trace-out run.ndjson    # one span record per line
//	sqlbench -exp all -no-optimize                # plan optimizer off (ablation)
//	sqlbench -explain-plan 'SELECT ...'           # plan before/after optimization
//
// Output is byte-identical at every -parallel setting; -parallel 1
// reproduces the fully sequential pipeline. The -parallel budget reaches
// every layer: workload generation, per-dataset labeling, example fan-out,
// and the engine's own grouped aggregation and set operations during
// equivalence verification. -stats reports wall times, per-dataset engine op
// counts, and per-model request/token/latency telemetry to stderr.
//
// -models replaces the five simulated models with a JSON spec set (inline or
// @file): provider "sim" rebuilds a calibrated simulator, provider "http"
// drives any OpenAI-compatible chat-completions endpoint, and each spec may
// layer retry/rate-limit/in-flight/cache middleware (see llm.Spec).
// Experiments pinned to specific paper models (fig6, fig8, fig10-12,
// casestudy) need those model names registered.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/sqlparse"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Int64("seed", 1, "benchmark seed")
		noVerify = flag.Bool("noverify", false, "skip engine verification of equivalence pairs (faster)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		tasks    = flag.Bool("tasks", false, "list registered tasks (id, paper name, datasets) and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for benchmark build, task runs, and intra-query engine execution (1 = sequential)")
		stats    = flag.Bool("stats", false, "report build/run wall times, engine op counts, and per-model usage to stderr")
		models   = flag.String("models", "", "JSON model specs (or @file) replacing the default simulated models; providers: sim, http")

		storeDir  = flag.String("store-dir", "", "persist the state task's durable oracle stores under this directory (one per dataset); a rerun recovers them from their WALs, and artifacts stay byte-identical to an in-memory build")
		storePool = flag.Int("store-pool", 0, "buffer-pool pages per oracle store (0 = default); small values force eviction so datasets exceed the pool")

		noOptimize  = flag.Bool("no-optimize", false, "run engine queries without the plan optimizer (pushdown, join reordering, streaming hash joins); output is byte-identical, only speed changes")
		explainPlan = flag.String("explain-plan", "", "print the logical plan of this SELECT before and after optimization (against a synthetic SDSS instance) and exit")

		continueOnError = flag.Bool("continue-on-error", false, "record per-example completion failures and keep going instead of aborting the run")
		maxFailures     = flag.Int("max-failures", 0, "abort a -continue-on-error run once more than this many examples fail (0 = unlimited)")
		checkpointDir   = flag.String("checkpoint-dir", "", "persist completed model responses to <dir>/<model>.ndjson and replay them on rerun; a resumed run's output is byte-identical to an uninterrupted one")
		traceOut        = flag.String("trace-out", "", "write the run's trace spans to this file: *.ndjson for one span record per line, anything else as Chrome trace_event JSON (load in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	if *explainPlan != "" {
		if err := printExplain(os.Stdout, *explainPlan); err != nil {
			fmt.Fprintln(os.Stderr, "sqlbench: -explain-plan:", err)
			os.Exit(2)
		}
		return
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *tasks {
		for _, t := range core.Tasks() {
			fmt.Printf("%-8s %-18s [%s] %s\n", t.ID(), t.Name(), strings.Join(t.Datasets(), ", "), t.Description())
		}
		return
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Validate every requested ID before the (expensive) benchmark build so
	// a typo fails in milliseconds, not after minutes of verification.
	var exps []experiments.Experiment
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sqlbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		exps = append(exps, e)
	}

	var specs []llm.Spec
	if *models != "" {
		var err error
		specs, err = llm.ParseSpecsArg(*models)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlbench: -models:", err)
			os.Exit(2)
		}
	}

	// -trace-out collects every span of the run (build, cells, examples, LLM
	// attempts, engine executions) in memory and writes them after the
	// experiments finish. Without the flag no tracer exists and the span call
	// sites are allocation-free no-ops.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.New(obs.WithCollector())
	}

	buildStart := time.Now()
	env, err := experiments.NewEnvConfig(experiments.Config{
		Seed:               *seed,
		VerifyEquivalences: !*noVerify,
		NoOptimize:         *noOptimize,
		Parallel:           *parallel,
		StoreDir:           *storeDir,
		StorePoolPages:     *storePool,
		Models:             specs,
		ContinueOnError:    *continueOnError,
		MaxFailures:        *maxFailures,
		CheckpointDir:      *checkpointDir,
		Tracer:             tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlbench: building benchmark:", err)
		os.Exit(1)
	}
	defer env.Close()
	if *stats {
		fmt.Fprintf(os.Stderr, "sqlbench: benchmark build took %v (parallel=%d)\n",
			time.Since(buildStart).Round(time.Millisecond), *parallel)
		var total int64
		for _, ds := range core.TaskDatasets {
			ops := env.Bench.EngineOps[ds]
			total += ops
			fmt.Fprintf(os.Stderr, "sqlbench: engine ops (equiv verification, %s): %d\n", ds, ops)
		}
		fmt.Fprintf(os.Stderr, "sqlbench: engine ops (equiv verification, total): %d\n", total)
		ss := env.Bench.StoreStats
		fmt.Fprintf(os.Stderr,
			"sqlbench: store (state oracle): pages_read=%d pages_written=%d pool_hit_rate=%.3f wal_records=%d wal_bytes=%d\n",
			ss.PagesRead, ss.PagesWritten, ss.HitRate(), ss.WALRecords, ss.WALBytes)
	}
	for _, e := range exps {
		runStart := time.Now()
		if err := e.Run(env, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "sqlbench: %s took %v\n", e.ID, time.Since(runStart).Round(time.Millisecond))
		}
	}
	if *stats {
		// Per-model client telemetry: how many completions ran, what they
		// cost in tokens, how they behaved (retries, rate limiting, latency).
		snap := env.Stats.Snapshot()
		failedByModel := env.FailedByModel()
		for _, name := range env.Stats.Names() {
			ms := snap[name]
			fmt.Fprintf(os.Stderr,
				"sqlbench: model %s: requests=%d errors=%d retries=%d failed_examples=%d prompt_tokens=%d completion_tokens=%d latency_mean_ms=%.1f latency_p50_ms=%.1f latency_p95_ms=%.1f latency_p99_ms=%.1f\n",
				name, ms.Requests, ms.Errors, ms.Retries, failedByModel[name], ms.PromptTokens, ms.CompletionTokens,
				ms.LatencyMeanMS, ms.LatencyP50MS, ms.LatencyP95MS, ms.LatencyP99MS)
		}
	}
	if *traceOut != "" {
		// Close ends the root run span so it reaches the collector; the
		// deferred second Close is a no-op.
		env.Close()
		if err := writeTrace(*traceOut, tracer.Collected()); err != nil {
			fmt.Fprintln(os.Stderr, "sqlbench: -trace-out:", err)
			os.Exit(1)
		}
	}
}

// printExplain renders a SELECT's logical plan before and after the engine's
// optimizer pass, resolved against a small synthetic SDSS instance (the
// optimizer's cost estimates read actual table sizes, so a concrete database
// is required).
func printExplain(w io.Writer, sql string) error {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return err
	}
	db := datagen.Instance(catalog.SDSS(), datagen.Config{Seed: 1, Rows: 100})
	before, after := engine.New(db).Explain(sel)
	fmt.Fprintln(w, "-- plan before optimization:")
	fmt.Fprint(w, before)
	fmt.Fprintln(w, "-- plan after optimization:")
	fmt.Fprint(w, after)
	return nil
}

// writeTrace exports collected spans: NDJSON when the path says so, Chrome
// trace_event JSON otherwise.
func writeTrace(path string, spans []obs.SpanRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".ndjson") {
		err = obs.WriteNDJSON(f, spans)
	} else {
		err = obs.WriteChromeTrace(f, spans)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
