// Command sqlbench regenerates the paper's tables and figures from the
// benchmark.
//
// Usage:
//
//	sqlbench -list
//	sqlbench -exp table3
//	sqlbench -exp table3,table4 -seed 2
//	sqlbench -exp all -noverify
//	sqlbench -exp all -parallel 16
//	sqlbench -exp all -stats
//
// Output is byte-identical at every -parallel setting; -parallel 1
// reproduces the fully sequential pipeline. The -parallel budget reaches
// every layer: workload generation, per-dataset labeling, example fan-out,
// and the engine's own grouped aggregation and set operations during
// equivalence verification. -stats reports wall times and per-dataset
// engine op counts to stderr so engine speedups are visible from the CLI.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		seed     = flag.Int64("seed", 1, "benchmark seed")
		noVerify = flag.Bool("noverify", false, "skip engine verification of equivalence pairs (faster)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for benchmark build, task runs, and intra-query engine execution (1 = sequential)")
		stats    = flag.Bool("stats", false, "report build/run wall times and per-dataset engine op counts to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *expFlag == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Validate every requested ID before the (expensive) benchmark build so
	// a typo fails in milliseconds, not after minutes of verification.
	var exps []experiments.Experiment
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sqlbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		exps = append(exps, e)
	}

	buildStart := time.Now()
	env, err := experiments.NewEnvConfig(experiments.Config{
		Seed:               *seed,
		VerifyEquivalences: !*noVerify,
		Parallel:           *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlbench: building benchmark:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "sqlbench: benchmark build took %v (parallel=%d)\n",
			time.Since(buildStart).Round(time.Millisecond), *parallel)
		var total int64
		for _, ds := range core.TaskDatasets {
			ops := env.Bench.EngineOps[ds]
			total += ops
			fmt.Fprintf(os.Stderr, "sqlbench: engine ops (equiv verification, %s): %d\n", ds, ops)
		}
		fmt.Fprintf(os.Stderr, "sqlbench: engine ops (equiv verification, total): %d\n", total)
	}
	for _, e := range exps {
		runStart := time.Now()
		if err := e.Run(env, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sqlbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "sqlbench: %s took %v\n", e.ID, time.Since(runStart).Round(time.Millisecond))
		}
	}
}
