// Command modelstub is a deterministic OpenAI-compatible chat-completions
// stub for exercising the HTTP model backend (llm/httpllm) end to end
// without network access or credentials: CI points sqlbench/sqlserved at it
// via -models. It answers every task prompt with a fixed parseable response,
// reports usage, and can inject failures to exercise the retry path.
//
// Usage:
//
//	modelstub -addr 127.0.0.1:9090
//	modelstub -addr 127.0.0.1:9090 -fail429 2     # first 2 requests get 429
//	modelstub -addr 127.0.0.1:9090 -latency 50ms  # per-request delay
//
// Chaos flags (the HTTP twin of the in-process faultllm harness):
//
//	-fail-rate 0.1 -fail-status 503 -seed 7  # fail 10% of requests, chosen
//	                                         # deterministically by prompt
//	                                         # hash, so reruns fail the same
//	                                         # requests
//	-flake-every 5                           # every 5th request fails once;
//	                                         # a retry of the same prompt
//	                                         # succeeds (exercises Retry)
//	-slow-every 10 -slow 500ms               # every 10th request stalls an
//	                                         # extra 500ms (exercises Hedge
//	                                         # tail-latency cutting)
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/prompt"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

type wireRequest struct {
	Model    string `json:"model"`
	Messages []struct {
		Role    string `json:"role"`
		Content string `json:"content"`
	} `json:"messages"`
	Temperature *float64 `json:"temperature,omitempty"`
	MaxTokens   int      `json:"max_tokens,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
}

// answer picks a deterministic, respparse-compatible reply per task so
// streamed eval results carry real predictions, not parse failures.
func answer(prompt string) string {
	lower := strings.ToLower(prompt)
	switch {
	case strings.Contains(lower, "exact missing token"):
		return `Yes, a token is absent. The missing token is "FROM".`
	case strings.Contains(lower, "missing word") || strings.Contains(lower, "token is missing"):
		return "No. The query appears complete, with no missing words."
	case strings.Contains(lower, "equivalent") || strings.Contains(lower, "identical results"):
		return "Yes, the two queries are equivalent: the rewrite is a where_predicate transformation that preserves results."
	case strings.Contains(lower, "longer than usual") || strings.Contains(lower, "runtime cost"):
		return "No, this query should run quickly; it touches limited data."
	case strings.Contains(lower, "describing this query") || strings.Contains(lower, "purpose of this query"):
		return "This query returns rows selected from the referenced tables."
	case strings.Contains(lower, "final contents") || strings.Contains(lower, "contain after running"):
		return answerState(prompt)
	default:
		return "No, the query does not contain any syntax errors. It is well-formed SQL."
	}
}

// answerState really executes the embedded DML/transaction script on the
// in-memory engine, so state-task evals through the stub grade against true
// final contents instead of a canned string.
func answerState(promptText string) string {
	const empty = "After running the script, the table is empty."
	script, ok := prompt.ExtractQuery(promptText)
	if !ok {
		return empty
	}
	stmts, err := sqlparse.ParseAll(script)
	if err != nil {
		return empty
	}
	db := engine.NewDB(nil)
	ms := engine.NewMemStore(db)
	if err := engine.New(db).ApplyScript(ms, stmts); err != nil {
		return empty
	}
	if ms.InTxn() {
		ms.Rollback()
	}
	table := ""
	for _, s := range stmts {
		if ct, ok := s.(*sqlast.CreateTableStmt); ok {
			table = ct.Name
		}
	}
	rel, ok := db.Table(table)
	if !ok || len(rel.Rows) == 0 {
		return empty
	}
	parts := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts[i] = engine.FormatRow(row)
	}
	return "Final contents: " + strings.Join(parts, " ")
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9090", "listen address")
		fail429 = flag.Int64("fail429", 0, "reject the first N completion requests with 429 (exercises retry)")
		latency = flag.Duration("latency", 0, "artificial per-request latency")

		failRate   = flag.Float64("fail-rate", 0, "fraction of requests failing with -fail-status, chosen deterministically by prompt hash and -seed")
		failStatus = flag.Int("fail-status", 503, "HTTP status of -fail-rate failures")
		seed       = flag.Int64("seed", 0, "seed for the -fail-rate decision hash")
		flakeEvery = flag.Int64("flake-every", 0, "every Nth request fails once with -fail-status; retries of the same prompt succeed (0 = off)")
		slowEvery  = flag.Int64("slow-every", 0, "every Nth request stalls an extra -slow (0 = off)")
		slow       = flag.Duration("slow", 500*time.Millisecond, "extra latency of -slow-every requests")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "modelstub: ", log.LstdFlags)

	var served, rejected atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/chat/completions", func(w http.ResponseWriter, r *http.Request) {
		var req wireRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, `{"error":{"message":"decoding request: %v","type":"invalid_request_error"}}`, err)
			return
		}
		n := served.Add(1)
		if n <= *fail429 {
			rejected.Add(1)
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"message":"stub rate limit, retry","type":"rate_limited"}}`)
			return
		}
		var prompt string
		for _, m := range req.Messages {
			if m.Role == "user" {
				prompt = m.Content
			}
		}
		// Deterministic chaos: -fail-rate picks failures by prompt hash (the
		// same prompt fails on every attempt — a planned failure set),
		// -flake-every by request count (a retry of the same prompt
		// succeeds — a transient blip).
		injected := false
		if *failRate > 0 {
			h := fnv.New64a()
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(*seed))
			h.Write(buf[:])
			h.Write([]byte(prompt))
			if float64(h.Sum64()>>11)/float64(1<<53) < *failRate {
				injected = true
			}
		}
		if *flakeEvery > 0 && n%*flakeEvery == 0 {
			injected = true
		}
		if injected {
			rejected.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(*failStatus)
			fmt.Fprintf(w, `{"error":{"message":"stub injected fault (status %d)","type":"server_error"}}`, *failStatus)
			return
		}
		if *latency > 0 {
			time.Sleep(*latency)
		}
		if *slowEvery > 0 && n%*slowEvery == 0 {
			time.Sleep(*slow)
		}
		text := answer(prompt)
		promptTokens := (len(prompt) + 3) / 4
		completionTokens := (len(text) + 3) / 4
		finish := "stop"
		if req.MaxTokens > 0 && completionTokens > req.MaxTokens {
			text = text[:req.MaxTokens*4]
			completionTokens = req.MaxTokens
			finish = "length"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"id":     fmt.Sprintf("stub-%d", served.Load()),
			"object": "chat.completion",
			"model":  req.Model,
			"choices": []map[string]any{{
				"index":         0,
				"message":       map[string]string{"role": "assistant", "content": text},
				"finish_reason": finish,
			}},
			"usage": map[string]int{
				"prompt_tokens":     promptTokens,
				"completion_tokens": completionTokens,
				"total_tokens":      promptTokens + completionTokens,
			},
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "served": served.Load(), "rejected": rejected.Load(),
		})
	})

	logger.Printf("listening on %s (fail429=%d latency=%v fail-rate=%.2f fail-status=%d flake-every=%d slow-every=%d slow=%v)",
		*addr, *fail429, *latency, *failRate, *failStatus, *flakeEvery, *slowEvery, *slow)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Fatal(srv.ListenAndServe())
}
