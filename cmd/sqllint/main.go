// Command sqllint runs the repository's static-analysis suite: five
// dependency-free analyzers that mechanize the determinism and
// concurrency invariants every PR otherwise re-proves with expensive
// differential tests (see internal/lint).
//
// Usage:
//
//	sqllint [-json] [-rules detsource,maporder,...] [packages]
//
// Packages default to ./... . Exit status is 0 when no finding remains
// unsuppressed, 1 when findings need attention, 2 on tool failure.
// Findings are suppressible only with an explicit
// `//lint:allow <rule> <reason>` comment; suppressed findings are still
// recorded (and shown in -json output) so the allowlist stays
// auditable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON diagnostics (allowlisted findings included)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sqllint [-json] [-rules r1,r2] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := lint.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "sqllint: unknown rule %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sqllint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Analyze(pkgs, analyzers)
	for i := range diags {
		diags[i].File = relPath(diags[i].File)
	}

	active := 0
	allowed := 0
	for _, d := range diags {
		if d.Allowed {
			allowed++
		} else {
			active++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "sqllint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			if d.Allowed {
				continue
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Rule, d.Message)
		}
		if active > 0 || allowed > 0 {
			fmt.Fprintf(os.Stderr, "sqllint: %d finding(s), %d allowlisted\n", active, allowed)
		}
	}

	if active > 0 {
		os.Exit(1)
	}
}

// relPath prefers a path relative to the working directory; go list
// hands the loader absolute paths, which are noisy in terminals and
// useless in CI logs.
func relPath(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
