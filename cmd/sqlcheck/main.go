// Command sqlcheck lints a SQL statement with the benchmark's oracle: it
// parses, runs the semantic checker against a chosen schema, reports
// syntactic properties, and suggests a repair when a token seems missing.
//
// Usage:
//
//	sqlcheck -schema sdss "SELECT plate , COUNT(*) FROM SpecObj"
//	echo "SELECT plate FROM SpecObj WHERE z 0.5" | sqlcheck -schema sdss
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyze"
	"repro/internal/catalog"
	"repro/internal/repair"
	"repro/internal/semcheck"
	"repro/internal/sqlparse"
)

func schemaByName(name string) (*catalog.Schema, error) {
	switch strings.ToLower(name) {
	case "sdss":
		return catalog.SDSS(), nil
	case "imdb", "joborder", "job":
		return catalog.IMDB(), nil
	case "sqlshare":
		return catalog.Merged("sqlshare", catalog.SQLShareSchemas()...), nil
	case "spider":
		return catalog.Merged("spider", catalog.SpiderSchemas()...), nil
	case "all":
		schemas := []*catalog.Schema{catalog.SDSS(), catalog.IMDB()}
		schemas = append(schemas, catalog.SQLShareSchemas()...)
		schemas = append(schemas, catalog.SpiderSchemas()...)
		return catalog.Merged("all", schemas...), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (sdss|imdb|sqlshare|spider|all)", name)
	}
}

func main() {
	schemaFlag := flag.String("schema", "all", "schema to resolve against: sdss|imdb|sqlshare|spider|all")
	flag.Parse()

	sql := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(sql) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlcheck: reading stdin:", err)
			os.Exit(1)
		}
		sql = string(data)
	}
	sql = strings.TrimSpace(sql)
	if sql == "" {
		fmt.Fprintln(os.Stderr, "sqlcheck: no SQL given (argument or stdin)")
		os.Exit(2)
	}

	schema, err := schemaByName(*schemaFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlcheck:", err)
		os.Exit(2)
	}

	exitCode := 0
	if _, perr := sqlparse.ParseStatement(sql); perr != nil {
		fmt.Printf("parse:      FAIL  %v\n", perr)
		exitCode = 1
		res := repair.Detect(sql, schema)
		if res.Found {
			fmt.Printf("repair:     a %s seems to be missing near word %d", res.Kind, res.WordIndex+1)
			if res.Inserted != "" {
				fmt.Printf(" (inserting %q fixes the parse)", res.Inserted)
			}
			fmt.Println()
		}
	} else {
		fmt.Println("parse:      OK")
		diags := semcheck.New(schema).CheckSQL(sql)
		if len(diags) == 0 {
			fmt.Println("semantics:  OK")
		} else {
			exitCode = 1
			for _, d := range diags {
				fmt.Printf("semantics:  %s\n", d)
			}
		}
	}

	p := analyze.Compute(sql)
	fmt.Printf("properties: type=%s words=%d tables=%d joins=%d columns=%d functions=%d predicates=%d nestedness=%d aggregate=%v\n",
		p.QueryType, p.WordCount, p.TableCount, p.JoinCount, p.ColumnCount,
		p.FunctionCount, p.PredicateCount, p.Nestedness, p.Aggregate)
	os.Exit(exitCode)
}
