// Command sqlserved runs the benchmark as an HTTP evaluation service.
//
// Usage:
//
//	sqlserved -addr :8080
//	sqlserved -addr :8080 -seed 2 -verify -parallel 16
//	sqlserved -addr :8080 -rps 10 -burst 20         # per-client admission control
//	sqlserved -addr :8080 -tokens-per-min 50000     # per-client token-spend budget
//	sqlserved -addr :8080 -models @models.json      # drive real model endpoints
//	sqlserved -addr :8080 -pprof-addr :6060         # profiling on a side listener
//
// Endpoints:
//
//	POST /v1/eval/{task}                       evaluate SQL against any registered task, NDJSON stream
//	GET  /v1/tasks                             task discovery (ids, skills, datasets, params)
//	GET  /v1/experiments                       list paper artifacts
//	GET  /v1/experiments/{id}?seed=N&verify=0  rendered artifact (cached)
//	GET  /v1/healthz                           liveness
//	GET  /v1/metrics                           service counters (JSON)
//	GET  /v1/metrics/prom                      same counters, Prometheus text format
//	GET  /v1/trace                             recent request spans (bounded ring)
//	GET  /debug/vars                           expvar (counters + memstats)
//
// Every response carries an X-Request-Id header (propagated from an incoming
// traceparent or X-Request-Id, else generated); request logs and trace spans
// correlate by that id. See README.md for request shapes and curl examples.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/llm"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "default benchmark seed (per-request override via seed)")
		verify    = flag.Bool("verify", false, "engine-verify equivalence pairs when building benchmarks (slower cold start)")
		noOpt     = flag.Bool("no-optimize", false, "run engine queries without the plan optimizer during verification (ablation; output is byte-identical)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for benchmark builds and eval fan-out")
		envCap    = flag.Int("env-cache", 0, "max cached evaluation environments, LRU-evicted (0 = default 4, negative = unbounded)")
		artCap    = flag.Int("artifact-cache", 0, "max cached rendered artifacts, LRU-evicted (0 = default 256, negative = unbounded)")
		rps       = flag.Float64("rps", 0, "per-client admission rate limit in requests/second (0 = unlimited); over-limit requests get 429 + Retry-After")
		burst     = flag.Int("burst", 10, "admission-control burst capacity per client")
		tpm       = flag.Float64("tokens-per-min", 0, "per-client completion-token budget per minute for eval requests (0 = unlimited); over-budget requests get 429 and count as token_limited")
		models    = flag.String("models", "", "JSON model specs (or @file) replacing the default simulated models; providers: sim, http")
		traceRing = flag.Int("trace-ring", 0, "max completed spans retained for GET /v1/trace (0 = default 2048, negative = disabled)")
		pprofAddr = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled); kept off the service listener so profiling is never exposed by accident")
		quiet     = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	var specs []llm.Spec
	if *models != "" {
		var err error
		specs, err = llm.ParseSpecsArg(*models)
		if err != nil {
			logger.Error("-models", "err", err)
			os.Exit(1)
		}
	}
	s := serve.NewServer(serve.Config{
		DefaultSeed:      *seed,
		Verify:           *verify,
		NoOptimize:       *noOpt,
		Parallel:         *parallel,
		EnvCacheCap:      *envCap,
		ArtifactCacheCap: *artCap,
		RPS:              *rps,
		Burst:            *burst,
		TokensPerMin:     *tpm,
		Models:           specs,
		Logger:           reqLogger,
		TraceRing:        *traceRing,
	})
	s.Metrics().Publish("sqlserved")

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof listener is separate from the service listener on purpose:
	// profiling endpoints leak heap contents and must never ride along on an
	// address that might be reachable by eval clients. The blank pprof import
	// registers its handlers on http.DefaultServeMux, which only this
	// listener serves.
	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof", "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain connections. Streaming eval
	// responses get a grace period to finish their prefixes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "seed", *seed, "verify", *verify, "parallel", *parallel)

	select {
	case err := <-errc:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
}
