// Command sqlserved runs the benchmark as an HTTP evaluation service.
//
// Usage:
//
//	sqlserved -addr :8080
//	sqlserved -addr :8080 -seed 2 -verify -parallel 16
//
// Endpoints:
//
//	POST /v1/eval/{syntax,tokens,equiv,perf,explain}  evaluate SQL, NDJSON stream
//	GET  /v1/experiments                              list paper artifacts
//	GET  /v1/experiments/{id}?seed=N&verify=0         rendered artifact (cached)
//	GET  /v1/healthz                                  liveness
//	GET  /v1/metrics                                  service counters (JSON)
//	GET  /debug/vars                                  expvar (counters + memstats)
//
// See README.md for request shapes and curl examples.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		seed     = flag.Int64("seed", 1, "default benchmark seed (per-request override via seed)")
		verify   = flag.Bool("verify", false, "engine-verify equivalence pairs when building benchmarks (slower cold start)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for benchmark builds and eval fan-out")
		envCap   = flag.Int("env-cache", 0, "max cached evaluation environments, LRU-evicted (0 = default 4, negative = unbounded)")
		artCap   = flag.Int("artifact-cache", 0, "max cached rendered artifacts, LRU-evicted (0 = default 256, negative = unbounded)")
		quiet    = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "sqlserved: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	s := serve.NewServer(serve.Config{
		DefaultSeed:      *seed,
		Verify:           *verify,
		Parallel:         *parallel,
		EnvCacheCap:      *envCap,
		ArtifactCacheCap: *artCap,
		Logger:           reqLogger,
	})
	s.Metrics().Publish("sqlserved")

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain connections. Streaming eval
	// responses get a grace period to finish their prefixes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (seed=%d verify=%v parallel=%d)", *addr, *seed, *verify, *parallel)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
}
