// Package repro is the public API of the reproduction of "Evaluating SQL
// Understanding in Large Language Models" (EDBT 2025). It exposes the
// benchmark builder, the simulated model registry, the task runners, and the
// per-table/figure experiment registry; everything underneath lives in
// internal packages (SQL parser, semantic checker, execution engine,
// workload generators, mutation and equivalence machinery).
//
// Quick start:
//
//	bench, _ := repro.BuildBenchmark(1, true)
//	reg := repro.NewSimRegistry(bench)
//	client, _ := reg.Get("GPT4")
//	results, _ := repro.RunSyntaxTask(context.Background(), client, bench, "SDSS")
//
// Or regenerate a paper artifact directly:
//
//	repro.RunExperiment("table3", os.Stdout, 1)
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/llm/sim"
)

// Benchmark is the assembled labeled benchmark (workloads plus the
// syntax-error, missing-token, equivalence, performance, and explanation
// datasets).
type Benchmark = core.Benchmark

// Registry holds model clients by name.
type Registry = llm.Registry

// Client is the model abstraction: Name plus Do(ctx, Request) (Response,
// error). Use Complete for the simple string-in/string-out form.
type Client = llm.Client

// Request and Response are the structured completion types: messages plus
// sampling parameters in, text plus token usage, latency, and finish reason
// out.
type (
	Request  = llm.Request
	Response = llm.Response
	Usage    = llm.Usage
)

// Complete asks a client for a plain-text completion of one prompt.
func Complete(ctx context.Context, c Client, prompt string) (string, error) {
	return llm.Complete(ctx, c, prompt)
}

// Result types for the built-in task families.
type (
	SyntaxResult  = core.SyntaxResult
	TokenResult   = core.TokenResult
	EquivResult   = core.EquivResult
	PerfResult    = core.PerfResult
	ExplainResult = core.ExplainResult
	FillResult    = core.FillResult
)

// Task is one type-erased entry of the core task registry: identity, skill
// tags, dataset topology, example codec, and the generic streaming driver.
type Task = core.Task

// Tasks returns every registered task in registration order (the paper's
// five plus registered extensions like fill_token).
func Tasks() []Task { return core.Tasks() }

// TaskIDs lists the registered task ids in registration order.
func TaskIDs() []string { return core.TaskIDs() }

// Datasets lists the classification-task datasets: SDSS, SQLShare,
// Join-Order.
func Datasets() []string { return append([]string{}, core.TaskDatasets...) }

// Models lists the five evaluated model names in the paper's order.
func Models() []string { return append([]string{}, llm.ModelNames...) }

// BuildBenchmark assembles the benchmark deterministically from a seed.
// With verifyEquivalences set, generated equivalence pairs are confirmed
// empirically on the execution engine before being admitted.
func BuildBenchmark(seed int64, verifyEquivalences bool) (*Benchmark, error) {
	return core.Build(core.BuildConfig{Seed: seed, VerifyEquivalences: verifyEquivalences})
}

// NewSimRegistry returns the five simulated models, constructed over the
// benchmark's schemas. Any Client implementation (e.g. an HTTP-backed one)
// can be Registered alongside or instead of them.
func NewSimRegistry(b *Benchmark) *Registry {
	return sim.Registry(sim.NewKnowledge(b.SchemasByDataset()))
}

// The typed Run*Task helpers drive the registry entries through the one
// generic core driver; RunTask is the type-erased form that works for any
// registered task id.

// RunSyntaxTask runs the syntax_error task for one model over one dataset.
func RunSyntaxTask(ctx context.Context, client Client, b *Benchmark, dataset string) ([]SyntaxResult, error) {
	ds, ok := b.Syntax[dataset]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return core.Run(ctx, client, core.SyntaxTask, ds)
}

// RunTokenTask runs the miss_token task for one model over one dataset.
func RunTokenTask(ctx context.Context, client Client, b *Benchmark, dataset string) ([]TokenResult, error) {
	ds, ok := b.Tokens[dataset]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return core.Run(ctx, client, core.TokensTask, ds)
}

// RunEquivTask runs the query_equiv task for one model over one dataset.
func RunEquivTask(ctx context.Context, client Client, b *Benchmark, dataset string) ([]EquivResult, error) {
	ds, ok := b.Equiv[dataset]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return core.Run(ctx, client, core.EquivTask, ds)
}

// RunPerfTask runs performance_pred (SDSS) for one model.
func RunPerfTask(ctx context.Context, client Client, b *Benchmark) ([]PerfResult, error) {
	return core.Run(ctx, client, core.PerfTask, b.Perf)
}

// RunExplainTask runs query_exp (Spider) for one model.
func RunExplainTask(ctx context.Context, client Client, b *Benchmark) ([]ExplainResult, error) {
	return core.Run(ctx, client, core.ExplainTask, b.Explain)
}

// RunFillTask runs the fill_token task for one model over one dataset.
func RunFillTask(ctx context.Context, client Client, b *Benchmark, dataset string) ([]FillResult, error) {
	task := core.FillTask
	cell := task.Cell(b, dataset)
	if len(cell) == 0 {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return core.Run(ctx, client, task, cell)
}

// RunTask runs any registered task over one benchmark dataset cell by its
// registry id, returning the task-agnostic result views.
func RunTask(ctx context.Context, client Client, b *Benchmark, taskID, dataset string) ([]core.ResultView, error) {
	task, ok := core.TaskByID(taskID)
	if !ok {
		return nil, fmt.Errorf("unknown task %q (registered: %v)", taskID, core.TaskIDs())
	}
	if dataset == "" {
		dataset = task.DefaultDataset()
	}
	cell, ok := task.Cell(b, dataset)
	if !ok {
		return nil, fmt.Errorf("task %s has no %q cell (datasets: %v)", taskID, dataset, task.Datasets())
	}
	var out []core.ResultView
	err := task.RunStream(ctx, client, cell, func(r any) error {
		out = append(out, task.View(r, true))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Experiments lists the regenerable paper artifacts (table/figure IDs) in
// paper order.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// ExperimentTitle returns the human title of an experiment ID.
func ExperimentTitle(id string) (string, bool) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", false
	}
	return e.Title, true
}

// RunExperiment regenerates one paper artifact, writing the rendered table
// or figure to w. The seed fixes the benchmark; equivalence pairs are
// engine-verified.
func RunExperiment(id string, w io.Writer, seed int64) error {
	env, err := experiments.NewEnv(seed, true)
	if err != nil {
		return err
	}
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (known: %v)", id, Experiments())
	}
	return e.Run(env, w)
}
