// Root benchmark harness: one Benchmark per paper table and figure (each
// iteration fully regenerates the artifact), plus the ablation benches
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/equiv"
	"repro/internal/experiments"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

// sharedEnv builds the benchmark + model registry once for all benches.
func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.NewEnv(1, true)
	})
	if envErr != nil {
		b.Fatalf("building environment: %v", envErr)
	}
	return envVal
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	env := sharedEnv(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(env, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SkillMatrix(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2WorkloadStats(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig1SDSSHistograms(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig2SQLShareHistograms(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3JoinOrderHistograms(b *testing.B) {
	benchExperiment(b, "fig3")
}
func BenchmarkFig4Correlations(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5ElapsedTime(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkTable3SyntaxError(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig6WordCountFailure(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7ErrorTypeFN(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkTable4MissToken(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkFig8MissTokenFailure(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9TokenTypeFN(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkTable5TokenLocation(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6PerfPred(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkFig10PerfPredFailure(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTable7QueryEquiv(b *testing.B)     { benchExperiment(b, "table7") }
func BenchmarkFig11EquivWordCount(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12EquivPredicates(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkCaseStudyExplanation(b *testing.B) { benchExperiment(b, "casestudy") }

// BenchmarkBuildBenchmark measures full benchmark assembly (workload
// generation, mutation, pair verification) with the default worker pool
// (GOMAXPROCS).
func BenchmarkBuildBenchmark(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(core.BuildConfig{Seed: 1, VerifyEquivalences: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildBenchmarkSequential pins the build to one worker, isolating
// the parallel speedup of the default build above (output is byte-identical
// between the two).
func BenchmarkBuildBenchmarkSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(core.BuildConfig{Seed: 1, VerifyEquivalences: false, Parallel: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 5)

// BenchmarkAblationUniformChannel compares the complexity-tilted error
// channel with a uniform one: with the tilt removed, the failure-vs-length
// signal of Figures 6/8/10-12 collapses. The FN-vs-TP word-count gap is
// reported as a metric.
func BenchmarkAblationUniformChannel(b *testing.B) {
	env := sharedEnv(b)
	profile, _ := sim.ProfileFor("Llama3")
	knowledge := sim.NewKnowledge(env.Bench.SchemasByDataset())
	flat := profile
	flat.Tilt = 0
	tilted := sim.NewWithProfile("Llama3", profile, knowledge)
	uniform := sim.NewWithProfile("Llama3", flat, knowledge)
	ds := env.Bench.Syntax[core.SDSS]
	gap := func(client *sim.Model) float64 {
		res, err := core.Run(context.Background(), client, core.SyntaxTask, ds)
		if err != nil {
			b.Fatal(err)
		}
		bd := core.SyntaxBreakdown(res, func(ex core.SyntaxExample) float64 {
			return float64(ex.Props.WordCount)
		})
		return bd.Avg(metrics.FN) - bd.Avg(metrics.TP)
	}
	b.ResetTimer()
	var tiltedGap, uniformGap float64
	for i := 0; i < b.N; i++ {
		tiltedGap = gap(tilted)
		uniformGap = gap(uniform)
	}
	b.ReportMetric(tiltedGap, "tilted-FN-TP-words")
	b.ReportMetric(uniformGap, "uniform-FN-TP-words")
}

// BenchmarkAblationJoinStrategy compares hash join vs nested-loop execution
// of an equi-join over a synthetic IMDB instance.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 5, Rows: 400})
	sql := "SELECT t.id FROM title AS t JOIN movie_companies AS mc ON t.id = mc.movie_id WHERE t.production_year > 1950"
	b.Run("hash", func(b *testing.B) {
		e := engine.New(db)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.QuerySQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nested-loop", func(b *testing.B) {
		e := engine.New(db)
		e.ForceNestedLoop = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.QuerySQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlanOptimizer compares the full plan-optimizer pipeline
// (predicate pushdown, cost-ordered comma joins, streaming hash joins)
// against the raw plan lowering on a three-relation comma join over a
// synthetic IMDB instance. Output is byte-identical in both modes.
func BenchmarkAblationPlanOptimizer(b *testing.B) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 5, Rows: 400})
	sql := "SELECT t.id FROM title AS t, movie_companies AS mc, movie_keyword AS mk " +
		"WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND t.production_year > 1950 AND mc.company_type_id > 0"
	for _, mode := range []struct {
		name     string
		optimize bool
	}{{"optimized", true}, {"unoptimized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(db)
			e.Optimize = mode.optimize
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.QuerySQL(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEquivChecker compares the rule-based and engine-backed
// equivalence checkers over generated pairs, reporting agreement.
func BenchmarkAblationEquivChecker(b *testing.B) {
	env := sharedEnv(b)
	pairs := env.Bench.Equiv[core.SDSS]
	if len(pairs) > 60 {
		pairs = pairs[:60]
	}
	checker := equiv.NewChecker(catalog.SDSS())
	b.ResetTimer()
	var agree, total int
	for i := 0; i < b.N; i++ {
		agree, total = 0, 0
		for _, p := range pairs {
			a, err1 := sqlparse.ParseSelect(p.SQL1)
			c, err2 := sqlparse.ParseSelect(p.SQL2)
			if err1 != nil || err2 != nil {
				continue
			}
			rule := equiv.RuleEquivalent(a, c)
			emp, err := checker.Equivalent(a, c)
			if err != nil {
				continue
			}
			total++
			if rule == emp {
				agree++
			}
		}
	}
	if total > 0 {
		b.ReportMetric(float64(agree)/float64(total), "rule-engine-agreement")
	}
}

// BenchmarkAblationPromptVariants measures accuracy spread across the prompt
// variants (the Section 3.4 tuning loop).
func BenchmarkAblationPromptVariants(b *testing.B) {
	env := sharedEnv(b)
	client, err := env.Registry.Get("GPT3.5")
	if err != nil {
		b.Fatal(err)
	}
	trial := env.Bench.Syntax[core.SDSS]
	if len(trial) > 60 {
		trial = trial[:60]
	}
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		results, _, err := core.TunePrompt(context.Background(), client, trial)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, r := range results {
			if r.Accuracy < lo {
				lo = r.Accuracy
			}
			if r.Accuracy > hi {
				hi = r.Accuracy
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "variant-accuracy-spread")
}

// BenchmarkParserThroughput exercises the parser over the generated SDSS
// workload (substrate-level number useful when comparing machines).
func BenchmarkParserThroughput(b *testing.B) {
	env := sharedEnv(b)
	queries := env.Bench.Workloads[core.SDSS].Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := sqlparse.ParseStatement(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}
