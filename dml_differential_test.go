package repro_test

// DML round-trip differential fuzzer: random INSERT/UPDATE/DELETE scripts —
// including BEGIN..COMMIT and BEGIN..ROLLBACK blocks — run against the
// durable store and against the in-memory evaluator as oracle, with the
// final table contents required to match as multisets. The store is closed
// and reopened (exercising catalog reload and, after unclean batches,
// recovery) every 50 scripts.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/store"
)

func canonRows(rows [][]engine.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = engine.FormatRow(r)
	}
	sort.Strings(out)
	return out
}

func TestDMLDifferentialStoreVsMemory(t *testing.T) {
	const iterations = 400
	schemas := []*catalog.Schema{catalog.SDSS(), catalog.IMDB()}
	r := rand.New(rand.NewSource(1234))
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { st.Close() }()

	for i := 0; i < iterations; i++ {
		if i > 0 && i%50 == 0 {
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if st, err = store.Open(dir, store.Options{PoolPages: 4}); err != nil {
				t.Fatalf("iteration %d: reopen: %v", i, err)
			}
		}
		schema := schemas[i%len(schemas)]
		tables := schema.Tables()
		donor := tables[r.Intn(len(tables))]
		sc := datagen.GenScript(donor, r)

		// Store side.
		ses := store.NewSession(st)
		sdb := engine.NewDB(nil)
		sdb.Source = ses
		seng := engine.New(sdb)
		if err := seng.ApplyScript(ses, sc.Stmts); err != nil {
			t.Fatalf("iteration %d: store exec: %v\n%s", i, err, sc.SQL)
		}
		if ses.InTxn() {
			t.Fatalf("iteration %d: script left a transaction open", i)
		}
		storeRows, err := st.ScanAll(sc.Table)
		if err != nil {
			t.Fatalf("iteration %d: scan: %v", i, err)
		}

		// Oracle side.
		mdb := engine.NewDB(nil)
		meng := engine.New(mdb)
		if err := meng.ApplyScript(engine.NewMemStore(mdb), sc.Stmts); err != nil {
			t.Fatalf("iteration %d: memory exec: %v\n%s", i, err, sc.SQL)
		}
		rel, _ := mdb.Table(sc.Table)

		got, want := canonRows(storeRows), canonRows(rel.Rows)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: contents diverge\nscript: %s\nstore:  %v\nmemory: %v",
				i, sc.SQL, got, want)
		}
		// Reset for the next script (same donor tables recur).
		ds := store.NewSession(st)
		if err := ds.DropTable(sc.Table); err != nil {
			t.Fatalf("iteration %d: drop: %v", i, err)
		}
	}
}
