package repro_test

// Differential stress test for the engine's plan optimizer: the fully
// verified benchmark build runs every dataset's equivalence pairs through
// the engine (both queries, three seeds each), so building it with the
// optimizer on and off — and at parallel 1 and 8 — and requiring identical
// output exercises the optimizer's byte-identity contract across thousands
// of generated queries, including the pairs whose verification errors.

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func buildBench(t *testing.T, noOptimize bool, parallel int) *core.Benchmark {
	t.Helper()
	b, err := core.Build(core.BuildConfig{
		Seed:               1,
		VerifyEquivalences: true,
		NoOptimize:         noOptimize,
		Parallel:           parallel,
	})
	if err != nil {
		t.Fatalf("Build(noOptimize=%v, parallel=%d): %v", noOptimize, parallel, err)
	}
	return b
}

func TestOptimizerDifferentialBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("four fully verified benchmark builds")
	}
	ref := buildBench(t, false, 1)
	refOff := buildBench(t, true, 1)

	cases := []struct {
		name  string
		bench *core.Benchmark
	}{
		{"no-optimize parallel=1", refOff},
		{"optimize parallel=8", buildBench(t, false, 8)},
		{"no-optimize parallel=8", buildBench(t, true, 8)},
	}
	for _, c := range cases {
		if !reflect.DeepEqual(ref.Workloads, c.bench.Workloads) {
			t.Errorf("%s: workloads diverge from optimized parallel=1 build", c.name)
		}
		if !reflect.DeepEqual(ref.Equiv, c.bench.Equiv) {
			t.Errorf("%s: verified equivalence pairs diverge", c.name)
		}
		if !reflect.DeepEqual(ref.Syntax, c.bench.Syntax) {
			t.Errorf("%s: syntax examples diverge", c.name)
		}
		if !reflect.DeepEqual(ref.Tokens, c.bench.Tokens) {
			t.Errorf("%s: token examples diverge", c.name)
		}
		if !reflect.DeepEqual(ref.Perf, c.bench.Perf) {
			t.Errorf("%s: perf examples diverge", c.name)
		}
		if !reflect.DeepEqual(ref.Explain, c.bench.Explain) {
			t.Errorf("%s: explain examples diverge", c.name)
		}
		if !reflect.DeepEqual(ref.State, c.bench.State) {
			t.Errorf("%s: state examples diverge", c.name)
		}
	}

	// The ops totals are compared at parallel 1 only: queries that error
	// under intra-query parallelism cancel their workers mid-batch, so the
	// partial counts they contribute are schedule-dependent (the counter's
	// determinism guarantee covers successful queries). The optimizer must
	// actually reduce the sequential total — that is the point of the pass.
	var on, off int64
	for _, v := range ref.EngineOps {
		on += v
	}
	for _, v := range refOff.EngineOps {
		off += v
	}
	if on >= off {
		t.Errorf("optimizer did not reduce engine ops: %d (on) >= %d (off)", on, off)
	}
}
