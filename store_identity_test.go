package repro_test

// Acceptance test for the durable storage engine's read path: a dataset
// materially larger than the buffer pool, queried through streaming heap
// scans, must produce results identical to the in-memory engine — ordered,
// at intra-query parallelism 1 and 8, with and without the plan optimizer.
// A second test pins the benchmark build: persisting the state task's oracle
// stores (-store-dir) with a tiny pool changes no artifact byte.

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/store"
)

var identityQueries = []string{
	"SELECT plate , mjd FROM SpecObj WHERE z > 0.5 AND zwarning = 0",
	"SELECT class , COUNT( * ) , AVG( z ) FROM SpecObj GROUP BY class ORDER BY class",
	"SELECT s.plate , p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 90",
	"SELECT DISTINCT type FROM PhotoObj WHERE clean = 1",
	"SELECT plate FROM SpecObj WHERE bestobjid IN ( SELECT objid FROM PhotoObj WHERE ra > 180 )",
	"SELECT objid , r FROM PhotoObj WHERE r < 20 ORDER BY r , objid",
	"SELECT plate FROM PlateX WHERE plate IN ( SELECT plate FROM SpecObj WHERE z > 1.0 )",
	"SELECT type , MAX( psfmag_r ) FROM PhotoObj GROUP BY type",
}

func TestStoreBackedQueriesMatchInMemory(t *testing.T) {
	schema := catalog.SDSS()
	const rows = 300 // PhotoObj alone spans dozens of 4 KiB pages
	mem := datagen.Instance(schema, datagen.Config{Seed: 7, Rows: rows})

	st, err := store.Open(t.TempDir(), store.Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ses := store.NewSession(st)
	for _, tab := range schema.Tables() {
		rel, ok := mem.Table(tab.Name)
		if !ok {
			t.Fatalf("memory instance is missing %s", tab.Name)
		}
		if err := ses.CreateTable(tab.Name, rel.Cols); err != nil {
			t.Fatal(err)
		}
		if err := ses.Append(tab.Name, rel.Rows); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.Stats().PagesWritten; n <= 8 {
		t.Fatalf("dataset spans only %d written pages — not larger than the 4-page pool", n)
	}

	sdb := engine.NewDB(schema)
	sdb.Source = st
	for _, sql := range identityQueries {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		me := engine.New(mem)
		want, err := me.Query(sel)
		if err != nil {
			t.Fatalf("in-memory query failed: %s: %v", sql, err)
		}
		for _, parallel := range []int{1, 8} {
			for _, optimize := range []bool{true, false} {
				e := engine.New(sdb)
				e.Parallel = parallel
				e.Optimize = optimize
				got, err := e.Query(sel)
				if err != nil {
					t.Fatalf("store query failed (parallel=%d optimize=%v): %s: %v", parallel, optimize, sql, err)
				}
				if !engine.EqualRelations(want, got, true) {
					t.Errorf("store results diverge from memory (parallel=%d optimize=%v): %s", parallel, optimize, sql)
				}
			}
		}
	}
}

// Persisting the state oracle stores on disk — with a pool small enough to
// force eviction mid-build — must not change a single artifact, at build
// parallelism 1 and 8.
func TestStoreDirBuildByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("three benchmark builds")
	}
	ref, err := core.Build(core.BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 8} {
		b, err := core.Build(core.BuildConfig{
			Seed:           1,
			Parallel:       parallel,
			StoreDir:       t.TempDir(),
			StorePoolPages: 2,
		})
		if err != nil {
			t.Fatalf("store-dir build (parallel=%d): %v", parallel, err)
		}
		if !reflect.DeepEqual(ref.State, b.State) {
			t.Errorf("parallel=%d: state examples diverge between temp-store and store-dir builds", parallel)
		}
		if !reflect.DeepEqual(ref.Workloads, b.Workloads) {
			t.Errorf("parallel=%d: workloads diverge under -store-dir", parallel)
		}
		if !reflect.DeepEqual(ref.Syntax, b.Syntax) {
			t.Errorf("parallel=%d: syntax examples diverge under -store-dir", parallel)
		}
		// Every script's commits must have reached the WAL; pages may never
		// be written back (each script's table is dropped right after its
		// contents are read, invalidating the frames).
		if b.StoreStats.WALRecords == 0 || b.StoreStats.WALBytes == 0 {
			t.Errorf("parallel=%d: store-dir build logged nothing (stats %+v)", parallel, b.StoreStats)
		}
	}
}
